package chi

import (
	"fmt"
	"math"
	"sort"
	"time"

	"routerwatch/internal/detector"
	"routerwatch/internal/network"
	"routerwatch/internal/packet"
	"routerwatch/internal/queue"
	"routerwatch/internal/stats"
	"routerwatch/internal/topology"
)

// reporter is the per-neighbor Qin observer: it runs at rs and records the
// traffic rs sends into Q = (r → rd), timestamped with the predicted
// enqueue time t + d + ps/bw (§6.2.1). Records accumulate in SoA lanes and
// leave as one aggregate-signed batch per round.
type reporter struct {
	v  *queueValidator
	rs packet.NodeID
	// inLink is rs→r.
	inLink topology.Link

	// pending holds unreported records; carry is the partition scratch the
	// next round's records swap through at each flush.
	pending, carry queue.PacketBatch
	// bodyBuf / items are the signing scratch behind batchBodies, reused
	// round over round.
	bodyBuf []byte
	items   [][]byte
}

// queueValidator runs at rd and validates Q = (r → rd) (Fig 6.1).
type queueValidator struct {
	p    *Protocol
	q    QueueID
	link topology.Link // r→rd

	reporters []*reporter

	// qlimit is the buffer size being validated (the RED limit when RED is
	// configured, else the link's queue limit).
	qlimit int

	// guard bounds a packet's residence in Q: the horizon up to which the
	// merged stream can be safely classified.
	guard time.Duration

	// ins and outs buffer unprocessed records as SoA lanes; the replay
	// merge walks them by index.
	ins  queue.PacketBatch
	outs queue.PacketBatch

	// bodyBuf / items are the checkpoint's aggregate-verification scratch.
	bodyBuf []byte
	items   [][]byte

	// outAvail counts future departures per fingerprint (multiset D).
	outAvail map[packet.Fingerprint]int
	// expected counts matched arrivals awaiting their departure event.
	expected map[packet.Fingerprint]int

	// qpred is the predicted queue length in bytes.
	qpred int

	// red replays the RED averaging state when configured; redCfg is its
	// configuration.
	red    *queue.REDState
	redCfg queue.REDConfig

	// Per-checkpoint accumulators.
	losses   []lossRec
	redProbs []float64
	redDrops int
	flowExp  map[packet.FlowID]float64
	flowObs  map[packet.FlowID]int
	report   RoundReport

	// redWindow holds the last REDWindow rounds' excess for the windowed
	// test; redTrail holds a longer trail for the drift baseline.
	redWindow []redRound
	redTrail  []float64

	// received buffers reporter batches by round.
	received map[int]map[packet.NodeID]*Batch

	// truthQ maps fingerprints to actual post-enqueue occupancy at r
	// (learning instrumentation only).
	truthQ  map[packet.Fingerprint]int
	samples []float64
	// redExcess collects per-round drop excess during learning (the
	// empirical null of the excess test).
	redExcess []float64

	disabled bool
	round    int
}

type lossRec struct {
	ps    int
	qpred int
}

type redRound struct {
	excess   float64
	arrivals int
	flowExp  map[packet.FlowID]float64
	flowObs  map[packet.FlowID]int
}

func newQueueValidator(p *Protocol, q QueueID) *queueValidator {
	g := p.env.Graph()
	link, ok := g.Link(q.R, q.RD)
	if !ok {
		panic(fmt.Sprintf("chi: no link for %v", q))
	}
	v := &queueValidator{
		p:        p,
		q:        q,
		link:     link,
		outAvail: make(map[packet.Fingerprint]int),
		expected: make(map[packet.Fingerprint]int),
	}
	v.qlimit = link.QueueLimit
	if p.opts.RED != nil {
		cfg := *p.opts.RED
		if cfg.Limit == 0 {
			cfg.Limit = link.QueueLimit
		}
		cfg.Bandwidth = link.Bandwidth
		v.red = queue.NewREDState(cfg)
		v.redCfg = cfg
		v.qlimit = cfg.Limit
	}
	// Residence bound: full buffer drained at line rate, plus transit and
	// processing slack.
	drain := time.Duration(int64(v.qlimit) * 8 * int64(time.Second) / link.Bandwidth)
	v.guard = drain + 50*time.Millisecond
	if v.guard >= p.opts.Round {
		v.guard = p.opts.Round / 2
	}

	// Reporters at every neighbor of r except rd itself.
	for _, rs := range g.Neighbors(q.R) {
		if rs == q.RD {
			continue
		}
		inLink, _ := g.Link(rs, q.R)
		rep := &reporter{v: v, rs: rs, inLink: inLink}
		v.reporters = append(v.reporters, rep)
		p.env.Tap(rs, rep.onEvent)
	}

	// rd records departures from Q: a packet received over ⟨r, rd⟩ exited
	// Q one transmission + propagation earlier.
	p.env.Tap(q.RD, func(ev network.Event) {
		if ev.Kind != network.EvReceive || ev.Peer != q.R {
			return
		}
		exit := ev.Time - link.Delay - link.TransmissionTime(ev.Packet.Size)
		fp := p.env.Hasher().Fingerprint(ev.Packet)
		v.outs.Append(fp, int32(ev.Packet.Size), exit, ev.Packet.Flow)
		v.outAvail[fp]++
		p.tel.Fingerprints.Inc()
	})
	p.env.HandleControl(q.RD, KindBatch, v.onBatch)

	// Learning instrumentation: ground-truth occupancy at r (§6.2.1's
	// learning period runs in a controlled environment where the real
	// queue is observable).
	if p.opts.Learning {
		v.truthQ = make(map[packet.Fingerprint]int)
		p.env.Tap(q.R, func(ev network.Event) {
			// Dequeue instants are known exactly to the validator (the
			// replayed exit time equals the actual transmission start), so
			// comparing occupancies there measures X = qact − qpred at the
			// same instant ts, as §6.2.1 defines it.
			if ev.Kind == network.EvDequeue && ev.Peer == q.RD {
				v.truthQ[p.env.Hasher().Fingerprint(ev.Packet)] = ev.QueueBytes
			}
		})
	}

	// Round machinery: reporters flush at each boundary; the checkpoint
	// runs µ later at rd.
	p.env.Every(p.opts.Round, func() {
		n := v.round
		v.round++
		for _, rep := range v.reporters {
			rep.flush(n)
		}
		p.env.After(p.opts.Timeout, func() { v.checkpoint(n) })
	})
	return v
}

// onEvent records rs's sends into Q.
func (r *reporter) onEvent(ev network.Event) {
	if ev.Kind != network.EvDequeue || ev.Peer != r.v.q.R {
		return
	}
	// Only traffic r will forward to rd enters Q: predictable from the
	// routing oracle (§4.1).
	pathNext := r.v.nextHopAtR(ev.Packet)
	if pathNext != r.v.q.RD {
		return
	}
	enq := ev.Time + r.inLink.TransmissionTime(ev.Packet.Size) + r.inLink.Delay
	fp := r.v.p.env.Hasher().Fingerprint(ev.Packet)
	r.pending.Append(fp, int32(ev.Packet.Size), enq, ev.Packet.Flow)
	r.v.p.tel.Fingerprints.Inc()
}

// nextHopAtR predicts which interface router R forwards the packet to.
func (v *queueValidator) nextHopAtR(p *packet.Packet) packet.NodeID {
	if p.Dst == v.q.R {
		return -1
	}
	path := v.p.oracle.Path(p.Src, p.Dst, p.Flow)
	for i, node := range path {
		if node == v.q.R && i+1 < len(path) {
			return path[i+1]
		}
	}
	return -1
}

// flush sends all pending records with predicted enqueue time before the
// end of round n, aggregate-signed, to rd. An empty batch is still sent so
// rd can distinguish silence from idleness.
func (r *reporter) flush(n int) {
	boundary := time.Duration(n+1) * r.v.p.opts.Round
	b := &Batch{Queue: r.v.q, Reporter: r.rs, Round: n}
	r.carry.Reset()
	for i := 0; i < r.pending.Len(); i++ {
		if r.pending.TSs[i] < boundary {
			b.Pkts.AppendRecord(&r.pending, i)
		} else {
			r.carry.AppendRecord(&r.pending, i)
		}
	}
	r.pending, r.carry = r.carry, r.pending

	r.bodyBuf, r.items = batchBodies(r.bodyBuf[:0], r.items, b)
	b.Sig = r.v.p.env.Auth().AggregateTag(r.rs, r.items)
	r.v.p.tel.Summaries.Inc()
	r.v.p.tel.SummaryBytes.Add(int64(len(r.bodyBuf)))
	r.v.p.tel.BatchEntries.Observe(int64(b.Pkts.Len()))
	r.v.p.env.SendControl(&network.ControlMessage{
		From: r.rs, To: r.v.q.RD, Kind: KindBatch, Payload: b,
	})
}

// batches received, keyed by round then reporter. Only the structural
// signer/reporter binding is checked on arrival; the cryptographic
// verification is deferred to the checkpoint, where one aggregate check
// covers the whole batch (a batch failing it is treated exactly like a
// missing report).
func (v *queueValidator) onBatch(cm *network.ControlMessage) {
	b, ok := cm.Payload.(*Batch)
	if !ok || b.Queue != v.q {
		return
	}
	if b.Sig.Signer != b.Reporter {
		return
	}
	if v.received == nil {
		v.received = make(map[int]map[packet.NodeID]*Batch)
	}
	byRep := v.received[b.Round]
	if byRep == nil {
		byRep = make(map[packet.NodeID]*Batch)
		v.received[b.Round] = byRep
	}
	if _, dup := byRep[b.Reporter]; dup {
		return
	}
	byRep[b.Reporter] = b
}

// checkpoint validates round n: ingest batches, process the merged stream
// up to the safe horizon, run the combined tests, and emit the report.
func (v *queueValidator) checkpoint(n int) {
	if v.disabled {
		return
	}
	byRep := v.received[n]
	delete(v.received, n)
	for _, rep := range v.reporters {
		b := byRep[rep.rs]
		if b != nil {
			v.bodyBuf, v.items = batchBodies(v.bodyBuf[:0], v.items, b)
			if !v.p.env.Auth().VerifyAggregate(v.items, b.Sig) {
				b = nil
			}
		}
		if b == nil {
			// A reporter's batch did not arrive within µ (or failed its
			// aggregate verification — indistinguishable from suppression
			// for attribution): protocol-faulty behaviour on ⟨rs, r, rd⟩
			// (r can suppress transiting reports). Detection degrades to
			// suspicion; the validator stops rather than misclassify
			// unmatched traffic.
			v.suspect(topology.Segment{rep.rs, v.q.R, v.q.RD},
				detector.KindExchangeTimeout, 1,
				fmt.Sprintf("no Qin report from %v for round %d", rep.rs, n))
			v.disabled = true
			return
		}
		v.ins.AppendBatch(&b.Pkts)
	}

	v.report = RoundReport{Queue: v.q, Round: n, At: v.p.env.Now()}
	horizon := time.Duration(n+1)*v.p.opts.Round - v.guard
	v.processUntil(horizon)
	v.finishRound(n)
}

// processUntil consumes the merged in/out streams in timestamp order up to
// the horizon, advancing qpred and classifying losses — the TV replay of
// §6.2.1. The merge walks the two timestamp lanes directly; record fields
// are only touched by the classification the merge dispatches to.
func (v *queueValidator) processUntil(horizon time.Duration) {
	v.ins.StableSortByTS()
	v.outs.StableSortByTS()

	insTS, outsTS := v.ins.TSs, v.outs.TSs
	i, o := 0, 0
	for {
		inOK := i < len(insTS) && insTS[i] <= horizon
		outOK := o < len(outsTS) && outsTS[o] <= horizon
		switch {
		case inOK && (!outOK || insTS[i] <= outsTS[o]):
			v.processIn(i)
			i++
		case outOK:
			v.processOut(o)
			o++
		default:
			v.ins.TrimFront(i)
			v.outs.TrimFront(o)
			return
		}
	}
}

// redOccupancy debiases the predicted queue length with the learned mean
// error µ before feeding the replayed RED average: qact ≈ qpred + µ, and
// the EWMA is sensitive enough near maxth that the raw prediction would
// spuriously enter the forced-drop region.
func (v *queueValidator) redOccupancy() int {
	occ := v.qpred + int(v.p.opts.Calibration.Mu)
	if occ < 0 {
		occ = 0
	}
	return occ
}

// processIn handles the predicted arrival at Q held in ins record i.
func (v *queueValidator) processIn(i int) {
	fp := v.ins.FPs[i]
	size := int(v.ins.Sizes[i])
	ts := v.ins.TSs[i]
	flow := v.ins.Flows[i]
	v.report.Arrivals++

	var redProb float64
	if v.red != nil {
		redProb = v.red.Arrive(v.redOccupancy(), ts)
		v.redProbs = append(v.redProbs, redProb)
		if v.flowExp == nil {
			v.flowExp = make(map[packet.FlowID]float64)
			v.flowObs = make(map[packet.FlowID]int)
		}
		v.flowExp[flow] += redProb
	}

	if v.outAvail[fp] > 0 {
		// The packet will exit Q: it entered.
		v.outAvail[fp]--
		if v.outAvail[fp] == 0 {
			delete(v.outAvail, fp)
		}
		v.expected[fp]++
		v.qpred += size
		if v.red != nil {
			v.red.RecordOutcome(false, v.redOccupancy(), ts)
		}
		return
	}

	// The packet never exits Q: dropped.
	v.report.Dropped++
	if v.red != nil {
		v.red.RecordOutcome(true, v.redOccupancy(), ts)
		v.redDrops++
		v.flowObs[flow]++
		// The zero-probability test (§6.5.2): RED never drops below minth
		// with buffer room. The replayed average carries the calibrated
		// prediction error, so the test only fires when the average is
		// below minth by a guard band of 2(|µ|+σ) — otherwise a fast ramp
		// could put the live average above minth while the replay lags.
		guard := 2 * (math.Abs(v.p.opts.Calibration.Mu) + v.p.opts.Calibration.Sigma)
		if redProb == 0 && v.qpred+size <= v.qlimit &&
			v.red.Avg()+guard < float64(v.redCfg.MinTh) {
			v.report.Suspicious++
			c := stats.SingleLossConfidence(float64(v.qlimit),
				float64(v.qpred), float64(size), v.p.opts.Calibration.Mu, v.p.opts.Calibration.Sigma)
			if c > v.report.MaxSingleConfidence {
				v.report.MaxSingleConfidence = c
			}
			if !v.p.opts.Learning && c >= v.p.opts.SingleThreshold {
				v.report.Detected = true
				v.suspect(topology.Segment{v.q.R, v.q.RD}, detector.KindREDZeroProb, c,
					fmt.Sprintf("drop with RED prob 0 (avg=%.0f qpred=%d)", v.red.Avg(), v.qpred))
			}
		}
		return
	}

	// Drop-tail classification (§6.2.1): congestive iff no room.
	if v.qpred+size > v.qlimit {
		v.report.Congestive++
		return
	}
	v.report.Suspicious++
	c := stats.SingleLossConfidence(float64(v.qlimit),
		float64(v.qpred), float64(size), v.p.opts.Calibration.Mu, v.p.opts.Calibration.Sigma)
	if c > v.report.MaxSingleConfidence {
		v.report.MaxSingleConfidence = c
	}
	v.losses = append(v.losses, lossRec{ps: size, qpred: v.qpred})
	if !v.p.opts.Learning && c >= v.p.opts.SingleThreshold {
		v.report.Detected = true
		v.suspect(topology.Segment{v.q.R, v.q.RD}, detector.KindSingleLoss, c,
			fmt.Sprintf("single-loss test: qpred=%d ps=%d", v.qpred, size))
	}
}

// processOut handles the observed departure from Q held in outs record o.
func (v *queueValidator) processOut(o int) {
	fp := v.outs.FPs[o]
	size := int(v.outs.Sizes[o])
	ts := v.outs.TSs[o]
	v.report.Departures++
	if v.expected[fp] > 0 {
		v.expected[fp]--
		if v.expected[fp] == 0 {
			delete(v.expected, fp)
		}
		v.qpred -= size
		if v.qpred < 0 {
			v.qpred = 0
		}
		if v.red != nil {
			v.red.NoteDeparture(v.redOccupancy(), ts)
		}
		if v.truthQ != nil {
			if qact, ok := v.truthQ[fp]; ok {
				v.samples = append(v.samples, float64(qact-v.qpred))
				delete(v.truthQ, fp)
			}
		}
		return
	}
	// A departure nobody reported sending into Q: fabrication by r
	// (§2.2.1) — unless it is pre-start traffic, which the tolerance
	// absorbs.
	v.report.Fabricated++
	if !v.p.opts.Learning && v.report.Fabricated > v.p.opts.FabricationTolerance {
		v.report.Detected = true
		v.suspect(topology.Segment{v.q.R, v.q.RD}, detector.KindFabrication, 1,
			fmt.Sprintf("%d unexplained departures", v.report.Fabricated))
	}
}

// finishRound runs the aggregate tests and publishes the round report.
func (v *queueValidator) finishRound(n int) {
	// Combined packet-losses Z-test (§6.2.1) over this round's
	// unresolved drops.
	if len(v.losses) >= 2 {
		var psSum, qpSum float64
		for _, l := range v.losses {
			psSum += float64(l.ps)
			qpSum += float64(l.qpred)
		}
		nn := float64(len(v.losses))
		c := stats.CombinedLossConfidence(float64(v.qlimit),
			qpSum/nn, psSum/nn, v.p.opts.Calibration.Mu, v.p.opts.Calibration.Sigma, len(v.losses))
		v.report.CombinedConfidence = c
		if !v.p.opts.Learning && c >= v.p.opts.CombinedThreshold {
			v.report.Detected = true
			v.suspect(topology.Segment{v.q.R, v.q.RD}, detector.KindCombinedLoss, c,
				fmt.Sprintf("combined test over %d losses", len(v.losses)))
		}
	}
	v.losses = v.losses[:0]

	// RED excess-drop test (§6.5.2): observed drops vs the replayed RED
	// expectation, as windowed mean per-round excess against the
	// empirically learned no-attack null. The analytic Poisson-binomial
	// variance understates reality because the replayed probabilities
	// carry correlated prediction noise; the learning period measures the
	// true null directly.
	if v.red != nil {
		for _, pp := range v.redProbs {
			v.report.REDExpected += pp
		}
		v.report.REDObserved = v.redDrops
		excess := float64(v.redDrops) - v.report.REDExpected
		if v.p.opts.Learning {
			v.redExcess = append(v.redExcess, excess)
		}
		v.redWindow = append(v.redWindow, redRound{
			excess: excess, arrivals: len(v.redProbs),
			flowExp: v.flowExp, flowObs: v.flowObs,
		})
		v.flowExp, v.flowObs = nil, nil
		if len(v.redWindow) > v.p.opts.REDWindow {
			v.redWindow = v.redWindow[1:]
		}
		var sum float64
		arrivals := 0
		for _, rr := range v.redWindow {
			sum += rr.excess
			arrivals += rr.arrivals
		}
		// Trailing baseline: the mean excess of the rounds *before* the
		// current window. Replay bias drifts slowly with the traffic
		// regime, so the test is differenced against the recent past — an
		// attack onset lifts the window above its own baseline.
		v.redTrail = append(v.redTrail, excess)
		trailLen := 4*v.p.opts.REDWindow + 10
		if len(v.redTrail) > trailLen {
			v.redTrail = v.redTrail[1:]
		}
		// Warmup: the excess test needs a settled baseline — the first
		// rounds carry the slow-start transient, whose burst losses are
		// not representative of steady state.
		const redWarmupRounds = 15
		if w := len(v.redWindow); w > 0 && arrivals > 0 && len(v.redTrail) >= w+redWarmupRounds {
			baselineRounds := v.redTrail[:len(v.redTrail)-w]
			var base float64
			for _, e := range baselineRounds {
				base += e
			}
			base /= float64(len(baselineRounds))
			nullMean, nullSD := v.p.opts.Calibration.redNull()
			_ = nullMean // the differencing removes the mean; only the spread matters
			// Serial correlation discount: treat the window as W/2
			// effective samples.
			eff := float64(w) / 2
			if eff < 1 {
				eff = 1
			}
			t := (sum/float64(w) - base) / (nullSD / math.Sqrt(eff))
			c := stats.StdNormalCDF(t)
			v.report.REDExcessConfidence = c
			if !v.p.opts.Learning && c >= v.p.opts.REDThreshold {
				v.report.Detected = true
				v.suspect(topology.Segment{v.q.R, v.q.RD}, detector.KindREDExcess, c,
					fmt.Sprintf("mean drop excess %.1f/round over %d rounds (baseline %.1f, null sd %.1f)",
						sum/float64(w), w, base, nullSD))
			}
		}
		v.redProbs = nil
		v.redDrops = 0

		// Per-flow drop-share test (flow-selective attacks, the §6.5.3
		// victim model): compare each flow's windowed drop count against
		// its share of the replayed drop probability. A global replay bias
		// scales expected and observed alike, so the binomial contrast
		// stays calibrated where the volume test drifts.
		if len(v.redWindow) >= v.p.opts.REDWindow {
			eTot, oTot := 0.0, 0
			eFlow := make(map[packet.FlowID]float64)
			oFlow := make(map[packet.FlowID]int)
			for _, rr := range v.redWindow {
				for f, e := range rr.flowExp {
					eFlow[f] += e
					eTot += e
				}
				for f, o := range rr.flowObs {
					oFlow[f] += o
					oTot += o
				}
			}
			if oTot >= 20 && eTot > 0 {
				flows := make([]packet.FlowID, 0, len(eFlow))
				for f := range eFlow {
					flows = append(flows, f)
				}
				sort.Slice(flows, func(i, j int) bool { return flows[i] < flows[j] })
				for _, f := range flows {
					ef := eFlow[f]
					if ef < 3 {
						continue
					}
					q := ef / eTot
					if q >= 1 {
						continue
					}
					z := (float64(oFlow[f]) - float64(oTot)*q) /
						math.Sqrt(float64(oTot)*q*(1-q))
					if z > v.report.REDMaxShareZ {
						v.report.REDMaxShareZ = z
					}
					if !v.p.opts.Learning && z >= v.p.opts.REDShareZ {
						v.report.Detected = true
						v.suspect(topology.Segment{v.q.R, v.q.RD}, detector.KindREDShare,
							stats.StdNormalCDF(z),
							fmt.Sprintf("flow %d: %d of %d drops vs expected share %.2f (z=%.1f)",
								f, oFlow[f], oTot, q, z))
					}
				}
			}
		}
	}

	if v.p.opts.Observer != nil {
		v.p.opts.Observer(v.report)
	}
	v.p.tel.Rounds.Inc()
	v.p.tel.RoundSpan("chi round", n, v.p.opts.Round, v.p.env.Now(), int32(v.q.RD))
}

// suspect raises a suspicion at rd.
func (v *queueValidator) suspect(seg topology.Segment, kind detector.Kind, conf float64, detail string) {
	s := detector.Suspicion{
		By: v.q.RD, Segment: seg, Round: v.round - 1, At: v.p.env.Now(),
		Kind: kind, Confidence: conf, Detail: detail,
	}
	v.p.opts.Sink(s)
	v.p.tel.ObserveSuspicion(s, detector.RoundEnd(s.Round, v.p.opts.Round))
	if v.p.opts.Responder != nil {
		v.p.opts.Responder(v.q.RD, seg)
	}
}
