// Package chi implements Protocol χ (Chapter 6): the compromised-router
// detection protocol that removes congestion ambiguity by *replaying* each
// validated output queue from reported traffic information, dynamically
// inferring exactly which packet losses were congestive. Once congestive
// losses are accounted for, remaining losses are attributed to malice using
// two statistical tests — the single-packet-loss confidence test (Fig 6.2)
// and the combined Z-test (§6.2.1) — plus the RED validation of §6.5.
//
// For each validated queue Q on link ⟨r, rd⟩ (Fig 6.1), every neighbor rs
// of r reports ⟨fingerprint, size, predicted enqueue time⟩ for the traffic
// it sends into Q, and rd records ⟨fingerprint, size, exit time⟩ for the
// traffic leaving Q. rd merges the streams in timestamp order, maintains
// the predicted queue length qpred, and classifies every missing packet:
// congestive if the buffer had no room, malicious otherwise — with
// confidence derived from the learned distribution of the prediction error
// X = qact − qpred (approximately normal, Fig 6.3).
package chi

import (
	"encoding/binary"
	"fmt"
	"time"

	"routerwatch/internal/auth"
	"routerwatch/internal/detector"
	"routerwatch/internal/detector/tvinfo"
	"routerwatch/internal/network"
	"routerwatch/internal/packet"
	"routerwatch/internal/protocol"
	"routerwatch/internal/queue"
	"routerwatch/internal/stats"
	"routerwatch/internal/topology"
)

// KindBatch is the control-message kind carrying reporter batches.
const KindBatch = "chi/batch"

// QueueID names a validated queue: the output interface of router R toward
// RD.
type QueueID struct {
	R, RD packet.NodeID
}

// String renders the queue ID.
func (q QueueID) String() string { return fmt.Sprintf("Q(%v->%v)", q.R, q.RD) }

// Options configures Protocol χ.
type Options struct {
	// Round is the validation interval τ. Default 1 s.
	Round time.Duration
	// Timeout µ: the checkpoint runs this long after a round boundary.
	// Default 250 ms.
	Timeout time.Duration

	// Calibration carries the learned parameters from the learning
	// period (§6.2.1): the qerror distribution and the RED excess test's
	// empirical null.
	Calibration Calibration

	// SingleThreshold is th_single, the target significance of the
	// single-packet loss test. Default 0.999.
	SingleThreshold float64
	// CombinedThreshold is th_combined for the Z-test. Default 0.999.
	CombinedThreshold float64
	// REDThreshold is the target significance for the RED excess-drop
	// test. Default 0.999.
	REDThreshold float64
	// REDWindow is how many recent rounds the RED excess test aggregates
	// over; windowing averages out replay-divergence noise and grows the
	// power against sustained attacks. Default 10.
	REDWindow int
	// REDShareZ is the z-score threshold of the per-flow drop-share test:
	// a flow whose windowed drop count exceeds its share of the replayed
	// drop probability by this many binomial standard deviations is being
	// selectively dropped. The contrast is immune to global replay bias.
	// TCP's per-flow drop clustering makes the binomial null heavy-tailed
	// (no-attack maxima of 5–7 were measured), so the default of 9 fires
	// only on egregious selectivity (full victim-flow drops).
	REDShareZ float64
	// FabricationTolerance ignores this many unexplained departures per
	// round before suspecting fabrication. Default 0.
	FabricationTolerance int

	// RED, when non-nil, validates RED queues (§6.5): the validator
	// replays the RED state machine instead of drop-tail occupancy.
	RED *queue.REDConfig

	// Learning suppresses detection and (with ground-truth taps) collects
	// qerror samples instead.
	Learning bool

	// Queues restricts validation to the given queues; nil validates every
	// directed link's output queue.
	Queues []QueueID

	// Sink receives suspicions.
	Sink detector.Sink
	// Responder is invoked at the detecting router (rd) on suspicion.
	Responder func(by packet.NodeID, seg topology.Segment)
	// Observer, if set, receives a report after every validated round of
	// every queue — the data series behind Figs 6.5–6.16.
	Observer func(RoundReport)
}

func (o *Options) fill() {
	if o.Round == 0 {
		o.Round = time.Second
	}
	if o.Timeout == 0 {
		o.Timeout = 250 * time.Millisecond
	}
	if o.SingleThreshold == 0 {
		o.SingleThreshold = 0.999
	}
	if o.CombinedThreshold == 0 {
		o.CombinedThreshold = 0.999
	}
	if o.REDThreshold == 0 {
		o.REDThreshold = 0.999
	}
	if o.REDWindow == 0 {
		o.REDWindow = 10
	}
	if o.REDShareZ == 0 {
		o.REDShareZ = 9
	}
	if o.Sink == nil {
		o.Sink = func(detector.Suspicion) {}
	}
}

// Calibration is what the learning period estimates (§6.2.1): the mean and
// standard deviation of the queue prediction error X = qact − qpred, and —
// for RED — the empirical null distribution of the windowed excess-drop
// Z-statistic, which absorbs the correlated noise of replayed drop
// probabilities.
type Calibration struct {
	// Mu and Sigma describe X = qact − qpred in bytes.
	Mu, Sigma float64
	// REDExcessMean and REDExcessStd describe the no-attack distribution
	// of the per-round drop excess (observed drops − Σp over replayed
	// arrivals). The excess test compares windowed mean excess against
	// this empirical null; zero REDExcessStd means uncalibrated (a
	// conservative default of sd 3 packets is used).
	REDExcessMean, REDExcessStd float64
}

// redNull returns the usable RED per-round excess null parameters.
func (c Calibration) redNull() (mean, sd float64) {
	if c.REDExcessStd <= 0 {
		return 0, 3
	}
	if c.REDExcessStd < 0.5 {
		return c.REDExcessMean, 0.5
	}
	return c.REDExcessMean, c.REDExcessStd
}

// RoundReport summarizes one queue's validation round.
type RoundReport struct {
	Queue QueueID
	Round int
	At    time.Duration

	Arrivals   int
	Departures int
	// Congestive counts drops explained by the queue replay.
	Congestive int
	// Dropped counts all unexplained-by-transmission packets (congestive +
	// suspicious).
	Dropped int
	// Suspicious counts drops with room in the predicted buffer.
	Suspicious int
	// MaxSingleConfidence is the largest c_single seen this round.
	MaxSingleConfidence float64
	// CombinedConfidence is c_combined over this round's drops (0 if < 2
	// drops).
	CombinedConfidence float64
	// REDExcessConfidence is the RED Z-test confidence (RED mode only).
	REDExcessConfidence float64
	// REDExpected is this round's Σp over replayed arrivals (RED only).
	REDExpected float64
	// REDObserved is this round's observed drop count (RED only).
	REDObserved int
	// REDMaxShareZ is the largest per-flow drop-share z-score this round's
	// window produced (RED only).
	REDMaxShareZ float64
	// Fabricated counts departures no neighbor reported sending into Q.
	Fabricated int
	// Detected reports whether any test crossed its threshold this round.
	Detected bool
}

// Protocol is a running χ deployment.
type Protocol struct {
	env    protocol.Env
	opts   Options
	oracle *tvinfo.PathOracle

	validators map[QueueID]*queueValidator
	tel        detector.Instruments
}

// Attach deploys χ on the simulated network; it is AttachEnv over the
// network's environment adapter.
func Attach(net *network.Network, opts Options) *Protocol {
	return AttachEnv(protocol.NewSimEnv(net), opts)
}

// AttachEnv deploys χ validators and reporters for the selected queues.
func AttachEnv(env protocol.Env, opts Options) *Protocol {
	opts.fill()
	g := env.Graph()
	p := &Protocol{
		env:        env,
		opts:       opts,
		oracle:     tvinfo.NewPathOracle(g),
		validators: make(map[QueueID]*queueValidator),
		tel:        detector.NewInstruments(env.Telemetry(), "chi"),
	}
	queues := opts.Queues
	if queues == nil {
		for _, l := range g.Links() {
			queues = append(queues, QueueID{R: l.From, RD: l.To})
		}
	}
	for _, q := range queues {
		p.validators[q] = newQueueValidator(p, q)
	}
	return p
}

// Round returns the validation interval τ.
func (p *Protocol) Round() time.Duration { return p.opts.Round }

// Validator returns the validator for a queue (tests, experiments).
func (p *Protocol) Validator(q QueueID) *Validator {
	return (*Validator)(p.validators[q])
}

// Validator is the exported read-only view of a queue validator.
type Validator queueValidator

// QErrorSamples returns the learning-period samples of qact − qpred
// (bytes); the distribution plotted in Fig 6.3.
func (v *Validator) QErrorSamples() []float64 {
	return append([]float64(nil), v.samples...)
}

// Calibrate fits the learning-period samples into the parameters a
// detection deployment needs.
func (v *Validator) Calibrate() Calibration {
	var c Calibration
	var qe stats.Estimator
	for _, s := range v.samples {
		qe.Add(s)
	}
	c.Mu, c.Sigma = qe.Mean(), qe.StdDev()
	if len(v.redExcess) > 0 {
		var ze stats.Estimator
		for _, z := range v.redExcess {
			ze.Add(z)
		}
		c.REDExcessMean, c.REDExcessStd = ze.Mean(), ze.StdDev()
	}
	return c
}

// Batch is the signed per-round traffic report a neighbor rs sends to the
// validating router rd (Tinfo(rs, Qin, ⟨rs,r,rd⟩, τ) of §6.2.1). Records
// travel as structure-of-arrays lanes (queue.PacketBatch): the reporter
// fills them straight from its event tap and the validator merges them into
// its replay stream with bulk lane appends, never materializing per-record
// structs.
type Batch struct {
	Queue    QueueID
	Reporter packet.NodeID
	Round    int
	Pkts     queue.PacketBatch
	// Sig is an auth.AggregateTag over the batch's body items (see
	// batchBodies): one constant-size signature for any record count,
	// verified with a single tag comparison at the checkpoint.
	Sig auth.Signature
}

// batchChunk is the aggregate-signature chunking granularity in records:
// the encoded record stream is split into ≤batchChunk-record items whose
// MACs feed the aggregate tag.
const batchChunk = 64

// batchBodies appends the batch's signed byte string — a 20-byte
// ⟨R, RD, reporter, round⟩ header followed by the lane-encoded records —
// to buf, and returns the refreshed buffer together with the ordered
// aggregate items (the header, then the record chunks) as views into it.
// Both buffers are caller-owned scratch, reused round over round.
func batchBodies(buf []byte, items [][]byte, b *Batch) ([]byte, [][]byte) {
	buf = binary.BigEndian.AppendUint32(buf, uint32(b.Queue.R))
	buf = binary.BigEndian.AppendUint32(buf, uint32(b.Queue.RD))
	buf = binary.BigEndian.AppendUint32(buf, uint32(b.Reporter))
	buf = binary.BigEndian.AppendUint64(buf, uint64(b.Round))
	const header = 20
	buf = b.Pkts.AppendEncode(buf)
	items = append(items[:0], buf[:header])
	for off := header; off < len(buf); off += 28 * batchChunk {
		end := off + 28*batchChunk
		if end > len(buf) {
			end = len(buf)
		}
		items = append(items, buf[off:end])
	}
	return buf, items
}
