package chi

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"routerwatch/internal/attack"
	"routerwatch/internal/detector"
	"routerwatch/internal/network"
	"routerwatch/internal/packet"
	"routerwatch/internal/queue"
	"routerwatch/internal/stats"
	"routerwatch/internal/tcpsim"
	"routerwatch/internal/topology"
)

// rig is a ready-to-run χ experiment on the Fig 6.4 topology.
type rig struct {
	net   *network.Network
	st    *topology.SimpleChiTopology
	man   *tcpsim.Manager
	proto *Protocol
	log   *detector.Log
	repts []RoundReport
	flows []*tcpsim.Flow
}

// buildRig assembles the topology, χ deployment, and TCP workload.
// redCfg non-nil switches the bottleneck (and validator) to RED.
func buildRig(seed int64, opts Options, redCfg *queue.REDConfig) *rig {
	st := topology.SimpleChi(3, 2)
	// Millisecond-scale processing jitter models the scheduling and
	// internal-multiplexing noise of the paper's PC routers (§6.2.1): it
	// is what makes qact − qpred a non-degenerate random variable. The RED
	// experiments mirror the paper's NS *simulation* (§6.5.3), whose
	// timing is nearly exact, so they use a much smaller jitter.
	jitter := 2 * time.Millisecond
	netOpts := network.Options{Seed: seed, ProcessingJitter: jitter}
	if redCfg != nil {
		netOpts.ProcessingJitter = 200 * time.Microsecond
		netOpts.QueueFactory = network.REDFactory(*redCfg)
	}
	net := network.New(st.Graph, netOpts)

	r := &rig{net: net, st: st, log: detector.NewLog()}
	opts.Queues = []QueueID{{R: st.R, RD: st.RD}}
	opts.RED = redCfg
	if opts.Sink == nil {
		opts.Sink = detector.LogSink(r.log)
	}
	prevObs := opts.Observer
	opts.Observer = func(rr RoundReport) {
		r.repts = append(r.repts, rr)
		if prevObs != nil {
			prevObs(rr)
		}
	}
	r.proto = Attach(net, opts)
	r.man = tcpsim.NewManager(net)
	return r
}

// startFlows launches n greedy TCP flows across the bottleneck.
func (r *rig) startFlows(n int) {
	for i := 0; i < n; i++ {
		f := r.man.StartFlow(tcpsim.FlowConfig{
			Src:   r.st.Sources[i%len(r.st.Sources)],
			Dst:   r.st.Sinks[i%len(r.st.Sinks)],
			Start: time.Duration(i) * 200 * time.Millisecond,
		})
		r.flows = append(r.flows, f)
	}
}

// learnParams runs a no-attack learning simulation and returns the fitted
// calibration (§6.2.1's learning period).
func learnParams(t *testing.T, seed int64, redCfg *queue.REDConfig) Calibration {
	return learnParamsN(t, seed, redCfg, 3)
}

// learnParamsN learns with a specified workload size; calibration should
// match the detection run's traffic mix. RED calibration is two-phase:
// first the qerror moments, then — with the debiased replay active — the
// empirical null of the windowed excess Z-statistic.
func learnParamsN(t *testing.T, seed int64, redCfg *queue.REDConfig, flows int) Calibration {
	t.Helper()
	onePass := func(seed int64, base Calibration) Calibration {
		r := buildRig(seed, Options{Learning: true, Round: time.Second, Calibration: base}, redCfg)
		r.startFlows(flows)
		r.net.Run(60 * time.Second)
		v := r.proto.Validator(QueueID{R: r.st.R, RD: r.st.RD})
		if len(v.QErrorSamples()) < 500 {
			t.Fatalf("learning collected only %d samples", len(v.QErrorSamples()))
		}
		return v.Calibrate()
	}
	cal := onePass(seed, Calibration{})
	if redCfg == nil {
		cal.REDExcessMean, cal.REDExcessStd = 0, 0
		return cal
	}
	return onePass(seed+100000, Calibration{Mu: cal.Mu, Sigma: cal.Sigma})
}

// detectOpts applies the calibrated target significance values: across
// no-attack calibration runs the single-loss confidence never exceeded
// 0.988 and the combined confidence never exceeded 0.967, so thresholds of
// 0.999 / 0.99 bound false positives while catching the queue-masked
// attacks (§6.1.3's "target significance value").
func detectOpts(cal Calibration) Options {
	return Options{
		Round:             time.Second,
		Calibration:       cal,
		SingleThreshold:   0.999,
		CombinedThreshold: 0.99,
		// The windowed RED excess test's no-attack ceiling measured 0.944
		// over 3×150 s low-jitter calibration runs; 0.97 clears it while
		// catching the masked attacks.
		REDThreshold:         0.97,
		FabricationTolerance: 2,
	}
}

func TestLearningQErrorApproximatelyNormal(t *testing.T) {
	// Fig 6.3: the prediction error qact − qpred is well modeled by a
	// normal distribution.
	r := buildRig(21, Options{Learning: true, Round: time.Second}, nil)
	r.startFlows(3)
	// Varied-size cross traffic diversifies the error lattice, as real
	// mixed workloads do.
	r.man.StartCBR(r.st.Sources[0], r.st.Sinks[1], 5e5, 300, 0, 30*time.Second)
	r.man.StartPoisson(r.st.Sources[1], r.st.Sinks[0], 100, 700, 0, 30*time.Second)
	r.net.Run(30 * time.Second)
	samples := r.proto.Validator(QueueID{R: r.st.R, RD: r.st.RD}).QErrorSamples()
	if len(samples) < 1000 {
		t.Fatalf("only %d samples", len(samples))
	}
	rep := stats.CheckNormality(samples)
	t.Logf("qerror: %v", rep)
	// The simulated error is lattice-valued (multiples of packet sizes),
	// so the KS distance to a continuous normal has a floor; the claim
	// that matters for the confidence tests is that the error is roughly
	// symmetric, unimodal and light-tailed around the fitted mean.
	if math.Abs(rep.Skewness) > 2 {
		t.Fatalf("qerror heavily skewed: %v", rep)
	}
	if rep.ExcessKurtosis > 10 {
		t.Fatalf("qerror heavy-tailed: %v", rep)
	}
	if rep.StdDev > 5000 {
		t.Fatalf("qerror sd %v too large relative to the 50 kB buffer", rep.StdDev)
	}
}

func TestNoAttackNoDetections(t *testing.T) {
	// Fig 6.5: under pure congestion the detector stays silent even
	// though the bottleneck drops packets.
	r := buildRig(23, detectOpts(learnParams(t, 22, nil)), nil)
	r.startFlows(3)
	r.net.Run(40 * time.Second)

	congestive := 0
	for _, rr := range r.repts {
		congestive += rr.Congestive
		if rr.Detected {
			t.Fatalf("false detection in round %d: %+v", rr.Round, rr)
		}
	}
	if congestive == 0 {
		t.Fatal("workload produced no congestive drops; test is vacuous")
	}
	if r.log.Len() != 0 {
		t.Fatalf("suspicions without attack: %v", r.log.All())
	}
}

func TestAttack1Drop20PercentOfSelectedFlow(t *testing.T) {
	// Fig 6.6: drop 20% of the selected flow's packets.
	r := buildRig(25, detectOpts(learnParams(t, 24, nil)), nil)
	r.startFlows(3)
	attackStart := 15 * time.Second
	r.net.Run(attackStart) // flows established before the attack
	victim := r.flows[0].ID()
	r.net.Router(r.st.R).SetBehavior(&attack.Dropper{
		Select: attack.And(attack.ByFlow(victim), attack.DataOnly),
		P:      0.2, Rng: rand.New(rand.NewSource(1)), Start: attackStart,
	})
	r.net.Run(40 * time.Second)

	if r.log.Len() == 0 {
		t.Fatal("20% selective drop not detected")
	}
	first := r.log.FirstAt()
	if first < attackStart {
		t.Fatalf("detected before attack at %v", first)
	}
	if first > attackStart+5*time.Second {
		t.Fatalf("detection took %v after attack start", first-attackStart)
	}
	for _, s := range r.log.All() {
		if !s.Segment.Contains(r.st.R) {
			t.Fatalf("suspicion does not implicate r: %v", s)
		}
	}
}

func TestAttack2DropWhenQueue90PercentFull(t *testing.T) {
	// Fig 6.7: the attacker hides inside congestion, dropping the victim
	// flow only when the queue is ≥90% full — below any workable static
	// threshold, but χ's replay knows there was still room.
	r := buildRig(27, detectOpts(learnParams(t, 26, nil)), nil)
	r.startFlows(3)
	attackStart := 15 * time.Second
	r.net.Run(attackStart)
	victim := r.flows[1].ID()
	r.net.Router(r.st.R).SetBehavior(&attack.Dropper{
		Select: attack.And(attack.ByFlow(victim), attack.DataOnly),
		P:      1, MinQueueFrac: 0.90, Start: attackStart,
	})
	r.net.Run(45 * time.Second)
	if r.log.Len() == 0 {
		t.Fatal("queue-masked (90%) attack not detected")
	}
}

func TestAttack3DropWhenQueue95PercentFull(t *testing.T) {
	// Fig 6.8: even finer masking at 95% queue occupancy.
	r := buildRig(29, detectOpts(learnParams(t, 28, nil)), nil)
	r.startFlows(3)
	attackStart := 15 * time.Second
	r.net.Run(attackStart)
	victim := r.flows[1].ID()
	r.net.Router(r.st.R).SetBehavior(&attack.Dropper{
		Select: attack.And(attack.ByFlow(victim), attack.DataOnly),
		P:      1, MinQueueFrac: 0.95, Start: attackStart,
	})
	r.net.Run(45 * time.Second)
	if r.log.Len() == 0 {
		t.Fatal("queue-masked (95%) attack not detected")
	}
}

func TestAttack4SYNDrop(t *testing.T) {
	// Fig 6.9: target a host opening a connection by dropping SYNs — a
	// single-packet-scale attack with outsized victim impact.
	r := buildRig(31, detectOpts(learnParams(t, 30, nil)), nil)
	r.startFlows(2)
	attackStart := 12 * time.Second
	r.net.Run(attackStart)
	r.net.Router(r.st.R).SetBehavior(&attack.Dropper{
		Select: attack.SYNOnly, P: 1, Start: attackStart,
	})
	// The victim tries to open a connection during the attack.
	victim := r.man.StartFlow(tcpsim.FlowConfig{
		Src: r.st.Sources[2], Dst: r.st.Sinks[0],
		Start: attackStart + 500*time.Millisecond, MaxPackets: 10,
	})
	r.net.Run(30 * time.Second)

	if r.log.Len() == 0 {
		t.Fatal("SYN-drop attack not detected")
	}
	// The victim experienced the 3 s SYN timeout (it never connects while
	// the attack persists).
	if victim.Stats.SynRetries == 0 {
		t.Fatal("victim flow was not actually harmed; attack misconfigured")
	}
	// SYN drops with an un-congested margin should trip the single-loss
	// test specifically.
	foundSingle := false
	for _, s := range r.log.All() {
		if s.Kind == detector.KindSingleLoss {
			foundSingle = true
		}
	}
	if !foundSingle {
		t.Fatalf("expected a single-loss detection: %v", r.log.All())
	}
}

func TestProtocolFaultyReportSuppression(t *testing.T) {
	// r suppresses a neighbor's Qin report in transit: the validator times
	// out and suspects ⟨rs, r, rd⟩.
	r := buildRig(33, detectOpts(learnParams(t, 32, nil)), nil)
	r.startFlows(2)
	r.net.Router(r.st.R).SetBehavior(&attack.ControlDropper{Kinds: map[string]bool{KindBatch: true}})
	r.net.Run(10 * time.Second)

	found := false
	for _, s := range r.log.All() {
		if s.Kind == detector.KindExchangeTimeout && s.Segment.Contains(r.st.R) && len(s.Segment) == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("report suppression not detected: %v", r.log.All())
	}
}

func TestFabricationDetected(t *testing.T) {
	r := buildRig(35, detectOpts(learnParams(t, 34, nil)), nil)
	r.startFlows(1)
	// r fabricates packets toward a sink, claiming they came from s1.
	attack.NewFabricator(r.net, r.st.R, r.st.Sources[0], r.st.Sinks[1], 700, 50*time.Millisecond)
	r.net.Run(10 * time.Second)

	found := false
	for _, s := range r.log.All() {
		if s.Kind == detector.KindFabrication && s.Segment.Contains(r.st.R) {
			found = true
		}
	}
	if !found {
		t.Fatalf("fabrication not detected: %v", r.log.All())
	}
}

func TestDetectionImplicatesOnlyGuiltyQueue(t *testing.T) {
	// Accuracy: every suspicion in the drop-attack scenario names a
	// segment containing the faulty router.
	r := buildRig(37, detectOpts(learnParams(t, 36, nil)), nil)
	r.startFlows(3)
	r.net.Run(15 * time.Second)
	victim := r.flows[0].ID()
	r.net.Router(r.st.R).SetBehavior(&attack.Dropper{
		Select: attack.And(attack.ByFlow(victim), attack.DataOnly),
		P:      0.5, Rng: rand.New(rand.NewSource(3)), Start: 15 * time.Second,
	})
	r.net.Run(40 * time.Second)

	gt := detector.NewGroundTruth([]packet.NodeID{r.st.R}, nil)
	if v := detector.CheckAccuracy(r.log, gt, 3); len(v) != 0 {
		t.Fatalf("accuracy violations: %v", v)
	}
	if r.log.Len() == 0 {
		t.Fatal("attack not detected")
	}
}
