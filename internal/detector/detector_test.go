package detector

import (
	"testing"
	"time"

	"routerwatch/internal/packet"
	"routerwatch/internal/topology"
)

func susp(by packet.NodeID, seg topology.Segment, at time.Duration) Suspicion {
	return Suspicion{By: by, Segment: seg, At: at, Kind: KindTrafficValidation, Confidence: 1}
}

func TestLogBasics(t *testing.T) {
	l := NewLog()
	if l.Len() != 0 || l.FirstAt() != 0 {
		t.Fatal("empty log not empty")
	}
	l.Add(susp(1, topology.Segment{2, 3}, 10*time.Second))
	l.Add(susp(4, topology.Segment{2, 3}, 5*time.Second))
	l.Add(susp(1, topology.Segment{5, 6}, 20*time.Second))

	if l.Len() != 3 {
		t.Fatalf("len %d", l.Len())
	}
	if got := l.FirstAt(); got != 5*time.Second {
		t.Fatalf("FirstAt %v", got)
	}
	if got := len(l.ByRouter(1)); got != 2 {
		t.Fatalf("ByRouter(1) %d", got)
	}
	if got := len(l.After(10 * time.Second)); got != 2 {
		t.Fatalf("After(10s) %d", got)
	}
	if got := len(l.Segments()); got != 2 {
		t.Fatalf("Segments %d", got)
	}
	if p := Precision(l); p != 2 {
		t.Fatalf("precision %d", p)
	}
}

func TestCheckAccuracy(t *testing.T) {
	gt := NewGroundTruth([]packet.NodeID{3}, []packet.NodeID{7})
	l := NewLog()
	l.Add(susp(1, topology.Segment{2, 3}, 0))   // contains traffic-faulty 3: ok
	l.Add(susp(1, topology.Segment{7, 8}, 0))   // contains protocol-faulty 7: ok
	l.Add(susp(3, topology.Segment{10, 11}, 0)) // by a faulty router: exempt
	if v := CheckAccuracy(l, gt, 2); len(v) != 0 {
		t.Fatalf("violations %v", v)
	}
	l.Add(susp(1, topology.Segment{10, 11}, 0)) // frames correct routers
	if v := CheckAccuracy(l, gt, 2); len(v) != 1 {
		t.Fatalf("violations %v, want the framing suspicion", v)
	}
	// Precision bound: a 3-segment violates a=2 even if it contains a
	// faulty router.
	l2 := NewLog()
	l2.Add(susp(1, topology.Segment{2, 3, 4}, 0))
	if v := CheckAccuracy(l2, gt, 2); len(v) != 1 {
		t.Fatalf("precision violation not flagged: %v", v)
	}
	if v := CheckAccuracy(l2, gt, 3); len(v) != 0 {
		t.Fatalf("a=3 should accept: %v", v)
	}
}

func TestCheckCompleteness(t *testing.T) {
	gt := NewGroundTruth([]packet.NodeID{3}, nil)
	routers := []packet.NodeID{0, 1, 2, 3, 4}
	l := NewLog()
	l.Add(susp(0, topology.Segment{2, 3}, 0))
	l.Add(susp(1, topology.Segment{3, 4}, 0))
	l.Add(susp(2, topology.Segment{2, 3}, 0))
	l.Add(susp(4, topology.Segment{2, 3}, 0))
	if missing := CheckCompleteness(l, gt, 3, routers); len(missing) != 0 {
		t.Fatalf("missing %v, want none (faulty router itself is exempt)", missing)
	}
	l2 := NewLog()
	l2.Add(susp(0, topology.Segment{2, 3}, 0))
	l2.Add(susp(1, topology.Segment{0, 1}, 0)) // does not contain 3
	missing := CheckCompleteness(l2, gt, 3, routers)
	if len(missing) != 3 { // 1, 2, 4 never suspected a segment containing 3
		t.Fatalf("missing %v", missing)
	}
}

func TestTee(t *testing.T) {
	a, b := NewLog(), NewLog()
	sink := Tee(LogSink(a), LogSink(b))
	sink(susp(1, topology.Segment{2, 3}, 0))
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatal("tee did not fan out")
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{
		KindTrafficValidation, KindExchangeTimeout, KindEquivocation,
		KindSingleLoss, KindCombinedLoss, KindREDZeroProb, KindREDExcess,
		KindFabrication, Kind(99),
	}
	seen := make(map[string]bool)
	for _, k := range kinds {
		s := k.String()
		if s == "" {
			t.Fatalf("empty string for kind %d", k)
		}
		if seen[s] && s != "unknown" {
			t.Fatalf("duplicate kind string %q", s)
		}
		seen[s] = true
	}
}

func TestGroundTruth(t *testing.T) {
	gt := NewGroundTruth([]packet.NodeID{1}, []packet.NodeID{2})
	if !gt.Faulty(1) || !gt.Faulty(2) || gt.Faulty(3) {
		t.Fatal("ground truth classification wrong")
	}
}
