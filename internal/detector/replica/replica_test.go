package replica

import (
	"math/rand"
	"testing"
	"time"

	"routerwatch/internal/attack"
	"routerwatch/internal/detector"
	"routerwatch/internal/network"
	"routerwatch/internal/packet"
	"routerwatch/internal/topology"
)

func rig(seed int64) (*network.Network, *Detector, *detector.Log) {
	net := network.New(topology.Line(3), network.Options{Seed: seed, ProcessingJitter: 50 * time.Microsecond})
	log := detector.NewLog()
	d := Attach(net, 1, Options{
		Round:     500 * time.Millisecond,
		Tolerance: 3,
		Sink:      detector.LogSink(log),
	})
	return net, d, log
}

func pump(net *network.Network, n int) {
	for i := 0; i < n; i++ {
		i := i
		net.Scheduler().At(time.Duration(i)*time.Millisecond+time.Microsecond, func() {
			net.Inject(0, &packet.Packet{Dst: 2, Size: 500, Flow: 1, Seq: uint32(i), Payload: uint64(i)})
		})
	}
}

func TestReplicaNoAttackSilent(t *testing.T) {
	net, d, log := rig(1)
	pump(net, 1500)
	net.Run(3 * time.Second)
	if d.Discrepancies != 0 || log.Len() != 0 {
		t.Fatalf("replica diverged without attack: %d rounds, %v", d.Discrepancies, log.All())
	}
}

func TestReplicaDetectsDrop(t *testing.T) {
	net, d, log := rig(2)
	net.Router(1).SetBehavior(&attack.Dropper{
		Select: attack.All, P: 0.1, Rng: rand.New(rand.NewSource(4)), Start: time.Second,
	})
	pump(net, 2000)
	net.Run(4 * time.Second)
	if d.Discrepancies == 0 {
		t.Fatal("replica missed the drop attack")
	}
	// Suspicions localize to the shadowed router itself: precision 1 —
	// the ideal detector the distributed protocols trade away.
	for _, s := range log.All() {
		if len(s.Segment) != 1 || s.Segment[0] != 1 {
			t.Fatalf("unexpected suspicion %v", s)
		}
	}
	if first := log.FirstAt(); first < time.Second {
		t.Fatalf("detected before the attack: %v", first)
	}
}

func TestReplicaDetectsModification(t *testing.T) {
	net, d, _ := rig(3)
	net.Router(1).SetBehavior(&attack.Modifier{Select: attack.All, Start: time.Second})
	pump(net, 2000)
	net.Run(4 * time.Second)
	if d.Discrepancies == 0 {
		t.Fatal("replica missed the modification attack")
	}
}

func TestReplicaDetectsFabrication(t *testing.T) {
	net, d, _ := rig(4)
	attack.NewFabricator(net, 1, 0, 2, 700, 10*time.Millisecond)
	pump(net, 500)
	net.Run(3 * time.Second)
	if d.Discrepancies == 0 {
		t.Fatal("replica missed fabrication")
	}
}

func TestReplicaDetectsMisrouting(t *testing.T) {
	// Diamond: router 1 diverts traffic for 3 via 2's detour; the replica
	// would have sent it straight to 3.
	g := topology.NewGraph()
	a, b, c, dd := g.AddNode("a"), g.AddNode("b"), g.AddNode("c"), g.AddNode("d")
	attrs := topology.DefaultLinkAttrs()
	g.AddDuplex(a, b, attrs)
	g.AddDuplex(b, dd, attrs)
	g.AddDuplex(b, c, attrs)
	g.AddDuplex(c, dd, attrs)
	net := network.New(g, network.Options{Seed: 5})
	log := detector.NewLog()
	det := Attach(net, b, Options{Round: 500 * time.Millisecond, Tolerance: 3, Sink: detector.LogSink(log)})
	net.Router(b).SetBehavior(&attack.Misrouter{Select: attack.All, To: c})
	for i := 0; i < 500; i++ {
		i := i
		net.Scheduler().At(time.Duration(i)*time.Millisecond+time.Microsecond, func() {
			net.Inject(a, &packet.Packet{Dst: dd, Size: 500, Flow: 1, Seq: uint32(i)})
		})
	}
	net.Run(3 * time.Second)
	if det.Discrepancies == 0 {
		t.Fatal("replica missed misrouting")
	}
}
