// Package replica implements the centralized failure detector of §2.3
// (Fig 2.1): an identical replica r′ of a monitored router r receives the
// same input traffic (observed promiscuously) and the detector compares the
// two output streams. Any discrepancy means either the monitored router or
// the detector itself is faulty.
//
// This is the "ideal" detector the distributed protocols approximate. The
// paper rejects it for deployment — it needs duplicate hardware per router
// and bit-exact determinism (routing-table updates, queue randomization must
// be synchronized) — but it is the semantic reference: a traffic-validation
// detector is correct insofar as it flags exactly what the replica would.
// The implementation doubles as the test oracle for the other protocols.
package replica

import (
	"fmt"
	"time"

	"routerwatch/internal/detector"
	"routerwatch/internal/network"
	"routerwatch/internal/packet"
	"routerwatch/internal/queue"
	"routerwatch/internal/summary"
	"routerwatch/internal/topology"
)

// Options configures a replica detector.
type Options struct {
	// Round is how often the output streams are compared.
	Round time.Duration
	// Tolerance absorbs boundary effects: packets in flight inside r (or
	// serialized differently) at a comparison instant. In a bit-exact
	// replica this can be a handful of packets.
	Tolerance int
	// Sink receives suspicions.
	Sink detector.Sink
}

// Detector shadows one router with a deterministic replica.
type Detector struct {
	net    *network.Network
	target packet.NodeID
	opts   Options

	// replica state: one queue model + forwarding per output interface,
	// fed by the tapped inputs of the monitored router.
	queues map[packet.NodeID]*replicaIface

	// outReal collects r's actual per-interface output fingerprints.
	outReal map[packet.NodeID]*summary.FPSet
	// outReplica collects the replica's predicted outputs.
	outReplica map[packet.NodeID]*summary.FPSet

	round int
	// Discrepancies counts rounds with detected divergence.
	Discrepancies int
}

// replicaIface models one output interface of the replica: a queue plus a
// busy/serialization clock identical to the real router's.
type replicaIface struct {
	link topology.Link
	q    queue.Discipline
	busy bool
}

// Attach deploys a replica detector shadowing target. The replica observes
// target's inputs in promiscuous mode (modeled as taps on the EvReceive
// events) and recomputes forwarding with the same deterministic tables.
func Attach(net *network.Network, target packet.NodeID, opts Options) *Detector {
	if opts.Round == 0 {
		opts.Round = time.Second
	}
	if opts.Sink == nil {
		opts.Sink = func(detector.Suspicion) {}
	}
	d := &Detector{
		net:        net,
		target:     target,
		opts:       opts,
		queues:     make(map[packet.NodeID]*replicaIface),
		outReal:    make(map[packet.NodeID]*summary.FPSet),
		outReplica: make(map[packet.NodeID]*summary.FPSet),
	}
	g := net.Graph()
	for _, nb := range g.Neighbors(target) {
		link, _ := g.Link(target, nb)
		d.queues[nb] = &replicaIface{link: link, q: queue.NewDropTail(link.QueueLimit)}
		d.outReal[nb] = summary.NewFPSet()
		d.outReplica[nb] = summary.NewFPSet()
	}

	// The replica's forwarding mirrors the deterministic next-hop table of
	// the monitored router's position (§2.3: "the behavior of a router is
	// deterministic").
	oracle := make(map[packet.NodeID]packet.NodeID) // dst → next hop
	parent, _ := g.ShortestPathTree(target)
	for _, dst := range g.Nodes() {
		if dst == target {
			continue
		}
		if path := topology.PathBetween(parent, target, dst); len(path) >= 2 {
			oracle[dst] = path[1]
		}
	}

	r := net.Router(target)
	r.AddTap(func(ev network.Event) {
		switch ev.Kind {
		case network.EvReceive:
			// The replica sees the same input and forwards it itself.
			d.replicaForward(ev.Packet, oracle)
		case network.EvDequeue:
			// r's observed output.
			d.outReal[ev.Peer].Add(net.Hasher().Fingerprint(ev.Packet))
		}
	})

	net.Scheduler().NewTicker(opts.Round, func() { d.compare() })
	return d
}

// replicaForward runs the replica's forwarding path for one input packet:
// TTL, next-hop lookup, enqueue (with identical drop-tail semantics) and
// serialized dequeue.
func (d *Detector) replicaForward(p *packet.Packet, oracle map[packet.NodeID]packet.NodeID) {
	if p.Dst == d.target {
		return // consumed locally; not part of the output streams
	}
	if p.TTL <= 1 {
		return
	}
	next, ok := oracle[p.Dst]
	if !ok {
		return
	}
	ifc := d.queues[next]
	if ifc == nil {
		return
	}
	q := p.Clone()
	q.TTL--
	now := d.net.Now()
	if ifc.q.Enqueue(q, now) != queue.DropNone {
		return // the replica predicts a congestive drop here too
	}
	if !ifc.busy {
		d.drainReplica(ifc, next)
	}
}

func (d *Detector) drainReplica(ifc *replicaIface, nb packet.NodeID) {
	now := d.net.Now()
	p := ifc.q.Dequeue(now)
	if p == nil {
		ifc.busy = false
		return
	}
	ifc.busy = true
	d.outReplica[nb].Add(d.net.Hasher().Fingerprint(p))
	tx := ifc.link.TransmissionTime(p.Size)
	d.net.Scheduler().After(tx, func() { d.drainReplica(ifc, nb) })
}

// compare validates r's outputs against the replica's for the last round.
func (d *Detector) compare() {
	n := d.round
	d.round++
	now := d.net.Now()
	for _, nb := range d.net.Graph().Neighbors(d.target) {
		real, pred := d.outReal[nb], d.outReplica[nb]
		d.outReal[nb], d.outReplica[nb] = summary.NewFPSet(), summary.NewFPSet()
		onlyPred, onlyReal := pred.Diff(real)
		// onlyPred: the replica forwarded it, r did not (drop/divert).
		// onlyReal: r emitted something the replica did not (fabrication
		// or modification).
		if len(onlyPred) > d.opts.Tolerance || len(onlyReal) > d.opts.Tolerance {
			d.Discrepancies++
			d.opts.Sink(detector.Suspicion{
				By:         d.target, // the detector is co-located with r
				Segment:    topology.Segment{d.target},
				Round:      n,
				At:         now,
				Kind:       detector.KindTrafficValidation,
				Confidence: 1,
				Detail: fmt.Sprintf("replica divergence on interface →%v: %d missing, %d unexpected",
					nb, len(onlyPred), len(onlyReal)),
			})
		}
	}
}
