package detector

import (
	"time"

	"routerwatch/internal/telemetry"
)

// suspicionLatencyBucketsMs bins detection latency — the delay from the end
// of the validated round to the suspicion instant — in milliseconds. The
// bounds cover the τ = 1 s (χ) through τ = 5 s (Π) regimes plus flood
// propagation tails.
var suspicionLatencyBucketsMs = []int64{100, 250, 500, 1_000, 2_000, 5_000, 10_000, 30_000, 60_000}

// batchEntriesBuckets bins per-round batch sizes (records per signed batch)
// — the amortization factor of the batched hot path.
var batchEntriesBuckets = []int64{1, 4, 16, 64, 256, 1_024, 4_096}

// sketchErrorBuckets bins the absolute difference between a sketch-mode
// loss/fabrication estimate and the exact full-summary count (packets).
var sketchErrorBuckets = []int64{0, 1, 2, 4, 8, 16, 32, 64}

// Instruments bundles a detection protocol's telemetry handles, resolved
// once at Attach time and labeled protocol=<name>. The zero value (all nil
// fields) is fully usable and free: every call degrades to a nil-check per
// internal/telemetry's disabled-path contract, so protocol code calls these
// unconditionally.
type Instruments struct {
	// Fingerprints counts traffic records folded into summaries — the
	// per-packet work of the protocol's data-plane taps.
	Fingerprints *telemetry.Counter
	// Summaries counts summary messages sent (Πk+2 exchanges, Π2 floods,
	// χ reporter batches); SummaryBytes accumulates their payload bytes —
	// the §5.2.1/§7 control-plane overhead.
	Summaries    *telemetry.Counter
	SummaryBytes *telemetry.Counter
	// Rounds counts validation rounds judged, per segment or queue.
	Rounds *telemetry.Counter
	// Suspicions counts suspicions raised or adopted; Latency bins the
	// delay from the validated round's end to the suspicion (ms).
	Suspicions *telemetry.Counter
	Latency    *telemetry.Histogram
	// BatchEntries bins the record count of each signed batch a reporter
	// flushes — the denominator of the aggregate-MAC amortization.
	BatchEntries *telemetry.Histogram
	// SketchError bins |sketch estimate − exact count| when a protocol
	// judges rounds from mergeable sketches instead of full summaries.
	SketchError *telemetry.Histogram

	// Trace, when non-nil, receives suspicion instants and round spans on
	// the suspecting router's timeline.
	Trace *telemetry.Tracer
}

// NewInstruments resolves a protocol's instruments against set's registry
// and tracer. A nil or disabled set yields the zero Instruments.
func NewInstruments(set *telemetry.Set, protocol string) Instruments {
	reg := set.Registry()
	return Instruments{
		Fingerprints: reg.Counter("rw_detector_fingerprints_total", "protocol", protocol),
		Summaries:    reg.Counter("rw_detector_summaries_total", "protocol", protocol),
		SummaryBytes: reg.Counter("rw_detector_summary_bytes_total", "protocol", protocol),
		Rounds:       reg.Counter("rw_detector_rounds_total", "protocol", protocol),
		Suspicions:   reg.Counter("rw_detector_suspicions_total", "protocol", protocol),
		Latency:      reg.Histogram("rw_detector_suspicion_latency_ms", suspicionLatencyBucketsMs, "protocol", protocol),
		BatchEntries: reg.Histogram("rw_detector_batch_entries", batchEntriesBuckets, "protocol", protocol),
		SketchError:  reg.Histogram("rw_detector_sketch_error_packets", sketchErrorBuckets, "protocol", protocol),
		Trace:        set.Tracer(),
	}
}

// RoundEnd returns the virtual time at which validation round n of period
// tau ends — the reference point suspicion latency is measured from.
func RoundEnd(n int, tau time.Duration) time.Duration {
	return time.Duration(n+1) * tau
}

// ObserveSuspicion records a raised or adopted suspicion: the counter, the
// detection latency relative to the validated round's end, and — when
// tracing — an instant carrying the suspicion kind.
func (ins *Instruments) ObserveSuspicion(s Suspicion, roundEnd time.Duration) {
	ins.Suspicions.Inc()
	if lat := s.At - roundEnd; lat >= 0 {
		ins.Latency.Observe(int64(lat / time.Millisecond))
	}
	if tr := ins.Trace; tr != nil {
		tr.Instant("suspicion", "detector", s.At, int32(s.By), s.Kind.String())
	}
}

// RoundSpan emits a validation-round span from round n's boundary to now on
// router tid's timeline (a no-op without a tracer).
func (ins *Instruments) RoundSpan(name string, n int, tau, now time.Duration, tid int32) {
	tr := ins.Trace
	if tr == nil {
		return
	}
	start := time.Duration(n) * tau
	if start > now {
		start = now
	}
	tr.Span(name, "detector", start, now, tid, "")
}
