package pik2

import (
	"math/rand"
	"testing"
	"time"

	"routerwatch/internal/attack"
	"routerwatch/internal/detector"
	"routerwatch/internal/network"
	"routerwatch/internal/packet"
	"routerwatch/internal/topology"
)

// testRound is the shortened validation interval used by the unit tests.
const testRound = 500 * time.Millisecond

func testOpts(log *detector.Log) Options {
	return Options{
		K:       1,
		Round:   testRound,
		Timeout: 100 * time.Millisecond,
		Policy:  PolicyContent,
		// Allow a couple of boundary-straddling packets per round.
		LossThreshold:        2,
		FabricationThreshold: 2,
		Sink:                 detector.LogSink(log),
	}
}

// pump injects n packets per direction between the terminal routers of a
// line network, spread one per millisecond.
func pump(net *network.Network, from, to packet.NodeID, n int, flow packet.FlowID) {
	for i := 0; i < n; i++ {
		i := i
		net.Scheduler().At(time.Duration(i)*time.Millisecond+time.Microsecond, func() {
			net.Inject(from, &packet.Packet{Dst: to, Size: 500, Flow: flow, Seq: uint32(i), Payload: uint64(i)})
		})
	}
}

func TestMonitoredSegmentsLine(t *testing.T) {
	net := network.New(topology.Line(4), network.Options{Seed: 1})
	p := Attach(net, testOpts(detector.NewLog()))
	// k=1: router 0 is an end of ⟨0,1,2⟩ and ⟨2,1,0⟩ only.
	segs := p.Agent(0).MonitoredSegments()
	if len(segs) != 2 {
		t.Fatalf("router 0 monitors %v, want 2 segments", segs)
	}
}

func TestNoAttackNoSuspicions(t *testing.T) {
	log := detector.NewLog()
	net := network.New(topology.Line(4), network.Options{Seed: 3, ProcessingJitter: 100 * time.Microsecond})
	Attach(net, testOpts(log))
	pump(net, 0, 3, 2000, 1)
	pump(net, 3, 0, 2000, 2)
	net.Run(4 * time.Second)
	if log.Len() != 0 {
		t.Fatalf("false positives without attack: %v", log.All())
	}
}

func TestDropAttackDetected(t *testing.T) {
	log := detector.NewLog()
	net := network.New(topology.Line(3), network.Options{Seed: 4, ProcessingJitter: 100 * time.Microsecond})
	Attach(net, testOpts(log))
	net.Router(1).SetBehavior(&attack.Dropper{Select: attack.All, P: 1})
	pump(net, 0, 2, 500, 1)
	net.Run(3 * time.Second)

	if log.Len() == 0 {
		t.Fatal("total drop attack not detected")
	}
	gt := detector.NewGroundTruth([]packet.NodeID{1}, nil)
	if v := detector.CheckAccuracy(log, gt, 3); len(v) != 0 {
		t.Fatalf("accuracy violations: %v", v)
	}
	if missing := detector.CheckCompleteness(log, gt, 1, net.Graph().Nodes()); len(missing) != 0 {
		t.Fatalf("routers without suspicion (strong completeness): %v", missing)
	}
	if p := detector.Precision(log); p > 3 {
		t.Fatalf("precision %d exceeds k+2=3", p)
	}
}

func TestDetectionLatencyWithinOneRound(t *testing.T) {
	log := detector.NewLog()
	net := network.New(topology.Line(3), network.Options{Seed: 5})
	Attach(net, testOpts(log))
	attackStart := 1200 * time.Millisecond
	net.Router(1).SetBehavior(&attack.Dropper{Select: attack.All, P: 1, Start: attackStart})
	pump(net, 0, 2, 4000, 1)
	net.Run(5 * time.Second)

	first := log.FirstAt()
	if first == 0 {
		t.Fatal("attack not detected")
	}
	if first < attackStart {
		t.Fatalf("detected before the attack started (%v < %v)", first, attackStart)
	}
	// Detection by the end of the round after the attack round, plus µ.
	if limit := attackStart + 2*testRound + 200*time.Millisecond; first > limit {
		t.Fatalf("detection at %v, want before %v", first, limit)
	}
}

func TestPartialDropDetected(t *testing.T) {
	// 20% selective drop — the Fatih experiment's attack magnitude.
	log := detector.NewLog()
	net := network.New(topology.Line(3), network.Options{Seed: 6})
	Attach(net, testOpts(log))
	net.Router(1).SetBehavior(&attack.Dropper{
		Select: attack.All, P: 0.2, Rng: rand.New(rand.NewSource(1)),
	})
	pump(net, 0, 2, 1000, 1)
	net.Run(3 * time.Second)
	if log.Len() == 0 {
		t.Fatal("20%% drop attack not detected")
	}
}

func TestModificationDetectedByContentNotFlow(t *testing.T) {
	for _, tc := range []struct {
		policy Policy
		want   bool
	}{
		{PolicyContent, true},
		{PolicyFlow, false},
	} {
		log := detector.NewLog()
		net := network.New(topology.Line(3), network.Options{Seed: 7})
		opts := testOpts(log)
		opts.Policy = tc.policy
		Attach(net, opts)
		net.Router(1).SetBehavior(&attack.Modifier{Select: attack.All})
		pump(net, 0, 2, 500, 1)
		net.Run(3 * time.Second)
		if got := log.Len() > 0; got != tc.want {
			t.Errorf("policy %v: detected=%v, want %v", tc.policy, got, tc.want)
		}
	}
}

func TestReorderingDetectedOnlyByOrderPolicy(t *testing.T) {
	for _, tc := range []struct {
		policy Policy
		want   bool
	}{
		{PolicyOrder, true},
		{PolicyContent, false},
	} {
		log := detector.NewLog()
		net := network.New(topology.Line(3), network.Options{Seed: 8})
		opts := testOpts(log)
		opts.Policy = tc.policy
		opts.ReorderThreshold = 5
		Attach(net, opts)
		net.Router(1).SetBehavior(&attack.Delayer{
			Select: attack.All, Jitter: 20 * time.Millisecond, Rng: rand.New(rand.NewSource(2)),
		})
		// Confine traffic to the interior of round 0 so the jitter cannot
		// displace packets across a round boundary: the attack is then
		// *pure* reordering, invisible to content validation.
		for i := 0; i < 800; i++ {
			i := i
			net.Scheduler().At(100*time.Millisecond+time.Duration(i)*250*time.Microsecond, func() {
				net.Inject(0, &packet.Packet{Dst: 2, Size: 500, Flow: 1, Seq: uint32(i), Payload: uint64(i)})
			})
		}
		net.Run(3 * time.Second)
		if got := log.Len() > 0; got != tc.want {
			t.Errorf("policy %v: detected=%v, want %v", tc.policy, got, tc.want)
		}
	}
}

func TestFabricationDetected(t *testing.T) {
	log := detector.NewLog()
	net := network.New(topology.Line(3), network.Options{Seed: 9})
	Attach(net, testOpts(log))
	attack.NewFabricator(net, 1, 0, 2, 700, 5*time.Millisecond)
	pump(net, 0, 2, 300, 1)
	net.Run(3 * time.Second)
	if log.Len() == 0 {
		t.Fatal("fabrication not detected")
	}
}

func TestProtocolFaultySummarySuppression(t *testing.T) {
	// The middle router forwards all data correctly but drops the summary
	// exchange: the ends time out and suspect the segment.
	log := detector.NewLog()
	net := network.New(topology.Line(3), network.Options{Seed: 10})
	Attach(net, testOpts(log))
	net.Router(1).SetBehavior(&attack.ControlDropper{Kinds: map[string]bool{KindSummary: true}})
	pump(net, 0, 2, 100, 1)
	net.Run(2 * time.Second)

	found := false
	for _, s := range log.All() {
		if s.Kind == detector.KindExchangeTimeout && s.Segment.Contains(1) {
			found = true
		}
	}
	if !found {
		t.Fatalf("summary suppression not detected: %v", log.All())
	}
}

func TestConsortingRoutersK2(t *testing.T) {
	// Line 0-1-2-3 with AdjacentFault(2): router 1 drops traffic and its
	// accomplice 2 lies in its summaries to hide it. The 3-segment
	// ⟨0,1,2⟩ validation is fooled by 2's lie, but the 4-segment
	// ⟨0,1,2,3⟩ between correct ends 0 and 3 cannot be fooled.
	log := detector.NewLog()
	net := network.New(topology.Line(4), network.Options{Seed: 11})
	opts := testOpts(log)
	opts.K = 2
	p := Attach(net, opts)

	net.Router(1).SetBehavior(&attack.Dropper{Select: attack.ByFlow(1), P: 1})
	// Router 2 (sink end of ⟨0,1,2⟩) claims to have received everything
	// the source end sent — it can't know the true fingerprints, but as a
	// consort it could replay them if routers 1 and 2 share information.
	// Model the strongest consorting lie: 2 suppresses its own honest
	// summaries entirely and echoes nothing, sending "all is well" empty
	// summaries matched by claiming zero traffic... which TV would catch.
	// The realistic consorting lie is: 2 reports exactly what 0 reports.
	// Since 1 tells 2 what it dropped, 2 can reconstruct the full set; we
	// model it by letting the corruptor see the dropped packets via the
	// network hasher. Here we approximate with the strongest lie: report
	// what the source end would report. For the ⟨0,1,2⟩ segment whose
	// source is 0, that is everything 0 sent — which 2 cannot fabricate
	// without the content, but consorts share it.
	hasher := net.Hasher()
	sentByZero := make(map[int]*Summary)
	net.Router(0).AddTap(func(ev network.Event) {
		if ev.Kind == network.EvDequeue && ev.Peer == 1 {
			n := int((ev.Time + 3*time.Millisecond) / testRound)
			s := sentByZero[n]
			if s == nil {
				s = NewSummary(PolicyContent)
				sentByZero[n] = s
			}
			s.Record(hasher.Fingerprint(ev.Packet), ev.Packet.Size)
		}
	})
	p.SetCorruptor(2, func(seg topology.Segment, round int, s *Summary) *Summary {
		if len(seg) == 3 && seg[0] == 0 && seg[2] == 2 {
			if forged := sentByZero[round]; forged != nil {
				return forged
			}
			return NewSummary(PolicyContent)
		}
		return s
	})

	pump(net, 0, 3, 1000, 1)
	net.Run(4 * time.Second)

	if log.Len() == 0 {
		t.Fatal("consorting attack not detected")
	}
	gt := detector.NewGroundTruth([]packet.NodeID{1}, []packet.NodeID{2})
	if v := detector.CheckAccuracy(log, gt, 4); len(v) != 0 {
		t.Fatalf("accuracy violations: %v", v)
	}
	// The 4-segment between correct ends must be among the suspicions.
	want := topology.Segment{0, 1, 2, 3}
	found := false
	for _, seg := range log.Segments() {
		if topology.Key(seg) == topology.Key(want) {
			found = true
		}
	}
	if !found {
		t.Fatalf("segment %v not suspected; suspected: %v", want, log.Segments())
	}
	if pr := detector.Precision(log); pr > 4 {
		t.Fatalf("precision %d exceeds k+2=4", pr)
	}
}

func TestSamplingStillDetects(t *testing.T) {
	log := detector.NewLog()
	net := network.New(topology.Line(3), network.Options{Seed: 12})
	opts := testOpts(log)
	opts.Sampling = 0.25
	Attach(net, opts)
	net.Router(1).SetBehavior(&attack.Dropper{Select: attack.All, P: 1})
	pump(net, 0, 2, 1000, 1)
	net.Run(3 * time.Second)
	if log.Len() == 0 {
		t.Fatal("drop attack not detected under 25% sampling")
	}
}

func TestSamplingNoFalsePositives(t *testing.T) {
	log := detector.NewLog()
	net := network.New(topology.Line(4), network.Options{Seed: 13, ProcessingJitter: 100 * time.Microsecond})
	opts := testOpts(log)
	opts.Sampling = 0.25
	Attach(net, opts)
	pump(net, 0, 3, 1500, 1)
	net.Run(3 * time.Second)
	if log.Len() != 0 {
		t.Fatalf("sampling false positives: %v", log.All())
	}
}

func TestResponderInvoked(t *testing.T) {
	log := detector.NewLog()
	net := network.New(topology.Line(3), network.Options{Seed: 14})
	opts := testOpts(log)
	var responses []topology.Segment
	opts.Responder = func(by packet.NodeID, seg topology.Segment) {
		responses = append(responses, seg)
	}
	Attach(net, opts)
	net.Router(1).SetBehavior(&attack.Dropper{Select: attack.All, P: 1})
	pump(net, 0, 2, 300, 1)
	net.Run(3 * time.Second)
	if len(responses) == 0 {
		t.Fatal("responder never invoked")
	}
}

func TestOracleOnSegment(t *testing.T) {
	g := topology.Line(5)
	o := NewPathOracle(g)
	// Path 0→4 is 0-1-2-3-4.
	if !o.OnSegment(0, 4, 0, topology.Segment{1, 2, 3}, 1, 0) {
		t.Fatal("aligned segment rejected")
	}
	if o.OnSegment(0, 4, 0, topology.Segment{1, 2, 3}, 1, 1) {
		t.Fatal("misaligned position accepted")
	}
	if o.OnSegment(0, 4, 0, topology.Segment{2, 1, 0}, 2, 0) {
		t.Fatal("reverse segment accepted for forward path")
	}
	if !o.OnSegment(4, 0, 0, topology.Segment{2, 1, 0}, 0, 2) {
		t.Fatal("reverse path segment rejected")
	}
}

func TestDelayDetectedOnlyByTimelinessPolicy(t *testing.T) {
	// A constant 30 ms delay at the middle router preserves content and
	// order; only conservation of timeliness catches it (§2.4.1).
	for _, tc := range []struct {
		policy Policy
		want   bool
	}{
		{PolicyTimeliness, true},
		{PolicyContent, false},
	} {
		log := detector.NewLog()
		net := network.New(topology.Line(3), network.Options{Seed: 17})
		opts := testOpts(log)
		opts.Policy = tc.policy
		opts.MaxDelay = 10 * time.Millisecond
		opts.LateThreshold = 2
		Attach(net, opts)
		net.Router(1).SetBehavior(&attack.Delayer{Select: attack.DataOnly, Delay: 30 * time.Millisecond})
		// Traffic confined to round interiors so the delay cannot displace
		// packets across bins (which content validation would notice).
		for i := 0; i < 300; i++ {
			i := i
			net.Scheduler().At(100*time.Millisecond+time.Duration(i)*time.Millisecond, func() {
				net.Inject(0, &packet.Packet{Dst: 2, Size: 500, Flow: 1, Seq: uint32(i), Payload: uint64(i)})
			})
		}
		net.Run(3 * time.Second)
		if got := log.Len() > 0; got != tc.want {
			t.Errorf("policy %v: detected=%v, want %v (%v)", tc.policy, got, tc.want, log.All())
		}
	}
}

func TestTimelinessNoFalsePositives(t *testing.T) {
	log := detector.NewLog()
	net := network.New(topology.Line(4), network.Options{Seed: 18, ProcessingJitter: 200 * time.Microsecond})
	opts := testOpts(log)
	opts.Policy = PolicyTimeliness
	opts.MaxDelay = 10 * time.Millisecond
	opts.LateThreshold = 2
	Attach(net, opts)
	pump(net, 0, 3, 2000, 1)
	net.Run(4 * time.Second)
	if log.Len() != 0 {
		t.Fatalf("timeliness false positives: %v", log.All())
	}
}

func TestECMPFabricDetection(t *testing.T) {
	// Diamond with tails: 0—1—{2,3}—4—5. ECMP splits flows between the
	// equal-cost middles; router 2 is compromised and drops its share.
	// Only flows hashed through 2 suffer; Πk+2 over the flow-aware oracle
	// localizes the fault to segments containing 2, and flows through 3
	// cause no false suspicion.
	g := topology.NewGraph()
	n0, n1 := g.AddNode("n0"), g.AddNode("n1")
	m2, m3 := g.AddNode("m2"), g.AddNode("m3")
	n4, n5 := g.AddNode("n4"), g.AddNode("n5")
	attrs := topology.DefaultLinkAttrs()
	g.AddDuplex(n0, n1, attrs)
	g.AddDuplex(n1, m2, attrs)
	g.AddDuplex(n1, m3, attrs)
	g.AddDuplex(m2, n4, attrs)
	g.AddDuplex(m3, n4, attrs)
	g.AddDuplex(n4, n5, attrs)

	net := network.New(g, network.Options{Seed: 19})
	e := topology.NewECMP(g, 11, 13)
	net.InstallECMP(e)

	// Pick flows so both branches carry traffic.
	var via2, via3 packet.FlowID = 0, 0
	for f := packet.FlowID(1); f < 100 && (via2 == 0 || via3 == 0); f++ {
		p := e.FlowPath(n0, n5, f)
		if p.Contains(m2) && via2 == 0 {
			via2 = f
		}
		if p.Contains(m3) && via3 == 0 {
			via3 = f
		}
	}
	if via2 == 0 || via3 == 0 {
		t.Fatal("could not find flows for both branches")
	}

	log := detector.NewLog()
	opts := testOpts(log)
	AttachECMP(net, e, []packet.FlowID{via2, via3}, opts)
	net.Router(m2).SetBehavior(&attack.Dropper{Select: attack.All, P: 1})

	for i := 0; i < 600; i++ {
		i := i
		net.Scheduler().At(time.Duration(i)*time.Millisecond+time.Microsecond, func() {
			net.Inject(n0, &packet.Packet{Dst: n5, Size: 500, Flow: via2, Seq: uint32(i), Payload: uint64(i)})
			net.Inject(n0, &packet.Packet{Dst: n5, Size: 500, Flow: via3, Seq: uint32(2000 + i), Payload: uint64(i)})
		})
	}
	net.Run(3 * time.Second)

	if log.Len() == 0 {
		t.Fatal("ECMP-branch attack not detected")
	}
	gt := detector.NewGroundTruth([]packet.NodeID{m2}, nil)
	if v := detector.CheckAccuracy(log, gt, 3); len(v) != 0 {
		t.Fatalf("accuracy violations: %v", v)
	}
	for _, seg := range log.Segments() {
		if seg.Contains(m3) && !seg.Contains(m2) {
			t.Fatalf("innocent branch suspected: %v", seg)
		}
	}
}
