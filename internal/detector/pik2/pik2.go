// Package pik2 implements Protocol Πk+2 (§5.2): the complete, accurate
// failure detector with precision k+2 that validates traffic per
// path-segment *ends* — the protocol the paper argues is cheap enough for
// practical deployment and the one its Fatih prototype runs.
//
// Under AdjacentFault(k), every router monitors each x-path-segment
// (3 ≤ x ≤ k+2) of which it is an end. Per validation round τ, the two ends
// of each monitored segment π collect traffic summaries for the traffic
// that traverses π, exchange them — signed — through π itself within a
// timeout µ, and evaluate a conservation-of-traffic predicate. A failed
// exchange or failed validation makes the end suspect π and reliably
// broadcast the signed suspicion, so every correct router eventually
// suspects π: strong completeness with precision k+2.
package pik2

import (
	"encoding/binary"
	"sort"
	"time"

	"routerwatch/internal/auth"
	"routerwatch/internal/consensus"
	"routerwatch/internal/detector"
	"routerwatch/internal/detector/tvinfo"
	"routerwatch/internal/network"
	"routerwatch/internal/packet"
	"routerwatch/internal/protocol"
	"routerwatch/internal/summary"
	"routerwatch/internal/topology"
)

// Policy selects the conservation-of-traffic property to validate
// (§2.4.1). See tvinfo.Policy.
type Policy = tvinfo.Policy

// Validation policies, re-exported from tvinfo.
const (
	PolicyFlow       = tvinfo.PolicyFlow
	PolicyContent    = tvinfo.PolicyContent
	PolicyOrder      = tvinfo.PolicyOrder
	PolicyTimeliness = tvinfo.PolicyTimeliness
)

// Control-plane message kinds.
const (
	// KindSummary carries a signed per-segment traffic summary between
	// segment ends, pinned through the segment itself.
	KindSummary = "pik2/summary"
	// TopicAlert floods signed suspicions.
	TopicAlert = "pik2/alert"
)

// ExchangeMode selects how segment ends transfer their traffic summaries.
type ExchangeMode int

// Exchange modes.
const (
	// ExchangeFull sends the complete summary (counter + fingerprint
	// multiset [+ order]): simple, bandwidth ∝ traffic.
	ExchangeFull ExchangeMode = iota
	// ExchangeReconcile sends only the counter and characteristic-
	// polynomial evaluations of the fingerprint set (Appendix A): the
	// peer reconciles the sets and recovers the exact difference,
	// bandwidth ∝ the difference bound, independent of traffic volume
	// ("optimal in bandwidth utilization", §2.4.1). PolicyContent only.
	ExchangeReconcile
	// ExchangeSketch sends a mergeable counting-Bloom sketch of the
	// fingerprint multiset (§2.4.1's Bloom summary, in counting form):
	// bandwidth is a fixed O(sketch) per round regardless of traffic, the
	// peer estimates both one-sided multiset differences from cell-wise
	// count surpluses, and sketches from consecutive rounds merge exactly.
	// PolicyContent only.
	ExchangeSketch
)

// Options configures the protocol.
type Options struct {
	// K is the AdjacentFault(k) bound; monitored segments have length up
	// to K+2. Default 1.
	K int
	// Round is the validation interval τ. Default 5 s (the Fatih setting).
	Round time.Duration
	// Timeout is the exchange timeout µ after a round boundary. Default 1 s.
	Timeout time.Duration
	// Policy selects the TV predicate. Default PolicyContent.
	Policy Policy
	// LossThreshold tolerates this many missing packets per segment-round
	// (boundary jitter); the static congestion allowance the paper
	// criticizes in §6.1.1 also lives here for lossy topologies.
	LossThreshold int
	// FabricationThreshold tolerates unexpected packets per segment-round.
	FabricationThreshold int
	// ReorderThreshold tolerates this reordering amount (PolicyOrder).
	ReorderThreshold int
	// MaxDelay bounds acceptable extra transit delay beyond the predicted
	// arrival (PolicyTimeliness).
	MaxDelay time.Duration
	// LateThreshold tolerates this many over-delayed packets per round
	// (PolicyTimeliness).
	LateThreshold int
	// Sampling, in (0,1), monitors only a keyed hash-range subsample per
	// segment (§5.2.1); 0 or ≥1 monitors everything.
	Sampling float64
	// Exchange selects the summary transfer encoding.
	Exchange ExchangeMode
	// ReconcileBudget bounds the recoverable set difference per
	// segment-round under ExchangeReconcile; differences beyond it are
	// themselves conclusive TV failures (they exceed any sane loss
	// threshold). Default LossThreshold + FabricationThreshold + 8.
	ReconcileBudget int
	// SketchCapacity sizes the ExchangeSketch counting filter for this
	// many packets per segment-round. Default 4096.
	SketchCapacity int
	// SketchFPRate is the sketch's target collision rate; together with
	// SketchCapacity it fixes the sketch geometry both ends must share.
	// Default 0.01.
	SketchFPRate float64
	// Sink receives every suspicion raised or accepted by any router.
	Sink detector.Sink
	// Responder, if set, is invoked at the suspecting router for its own
	// detections — wire routing.(*Daemon).AnnounceSuspicion here to close
	// the response loop.
	Responder func(by packet.NodeID, seg topology.Segment)
}

func (o *Options) fill() {
	if o.K < 1 {
		o.K = 1
	}
	if o.Round == 0 {
		o.Round = 5 * time.Second
	}
	if o.Timeout == 0 {
		o.Timeout = time.Second
	}
	if o.Policy == 0 {
		o.Policy = PolicyContent
	}
	if o.Sink == nil {
		o.Sink = func(detector.Suspicion) {}
	}
	if o.ReconcileBudget == 0 {
		o.ReconcileBudget = o.LossThreshold + o.FabricationThreshold + 8
	}
	if o.SketchCapacity == 0 {
		o.SketchCapacity = 4096
	}
	if o.SketchFPRate == 0 {
		o.SketchFPRate = 0.01
	}
	if o.Exchange == ExchangeReconcile && o.Policy != PolicyContent {
		panic("pik2: ExchangeReconcile requires PolicyContent")
	}
	if o.Exchange == ExchangeSketch && o.Policy != PolicyContent {
		panic("pik2: ExchangeSketch requires PolicyContent")
	}
}

// Corruptor lets tests install protocol-faulty reporting at a router: it
// may mutate the summary it is about to send for a segment, or return nil
// to silently not send (§2.2.1 "announcing incorrect reports" / not
// participating). Traffic-faulty behaviour is modeled in internal/attack;
// this hook models protocol-faulty behaviour.
type Corruptor func(seg topology.Segment, round int, s *Summary) *Summary

// Protocol is a running Πk+2 deployment.
type Protocol struct {
	env    protocol.Env
	opts   Options
	flood  *consensus.Service
	oracle *PathOracle
	agents map[packet.NodeID]*agent
	tel    detector.Instruments

	// recPts caches the shared reconciliation points; bodyBuf is the
	// reusable signed-body scratch all agents encode into (per-Protocol,
	// single-threaded like the simulation that drives it).
	recPts  []uint64
	bodyBuf []byte
}

// Attach deploys Πk+2 on every router of the simulated network; it is
// AttachEnv over the network's environment adapter.
func Attach(net *network.Network, opts Options) *Protocol {
	return AttachEnv(protocol.NewSimEnv(net), opts)
}

// AttachEnv deploys Πk+2 on every router of the environment. Monitored
// segments are derived from the deterministic routing paths of the current
// topology (§4.1: paths are predictable in the stable state).
func AttachEnv(env protocol.Env, opts Options) *Protocol {
	opts.fill()
	g := env.Graph()
	paths := g.AllPairsPaths()
	pr, _ := topology.MonitorSets(paths, opts.K, topology.ModeEnds)

	p := &Protocol{
		env:    env,
		opts:   opts,
		flood:  env.Flood(),
		oracle: NewPathOracle(g),
		agents: make(map[packet.NodeID]*agent),
		tel:    detector.NewInstruments(env.Telemetry(), "pik2"),
	}
	for _, id := range env.Nodes() {
		p.agents[id] = newAgent(p, id, pr[id])
	}
	return p
}

// AttachECMP deploys Πk+2 over an equal-cost multipath fabric (§7.4.1).
// The monitoring set is derived from the deterministic per-flow paths of
// the given active flows, and the path oracle resolves the same flow-hash
// choices the routers make, so both segment ends classify every packet
// identically.
func AttachECMP(net *network.Network, e *topology.ECMP, flows []packet.FlowID, opts Options) *Protocol {
	return AttachECMPEnv(protocol.NewSimEnv(net), e, flows, opts)
}

// AttachECMPEnv is AttachECMP for any environment backend.
func AttachECMPEnv(env protocol.Env, e *topology.ECMP, flows []packet.FlowID, opts Options) *Protocol {
	opts.fill()
	g := env.Graph()
	pathSet := make(map[string]topology.Path)
	for _, src := range g.Nodes() {
		for _, dst := range g.Nodes() {
			if src == dst {
				continue
			}
			for _, f := range flows {
				if p := e.FlowPath(src, dst, f); p != nil {
					pathSet[p.String()] = p
				}
			}
		}
	}
	paths := make([]topology.Path, 0, len(pathSet))
	keys := make([]string, 0, len(pathSet))
	for k := range pathSet {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		paths = append(paths, pathSet[k])
	}
	pr, _ := topology.MonitorSets(paths, opts.K, topology.ModeEnds)

	p := &Protocol{
		env:    env,
		opts:   opts,
		flood:  env.Flood(),
		oracle: tvinfo.NewECMPPathOracle(e),
		agents: make(map[packet.NodeID]*agent),
		tel:    detector.NewInstruments(env.Telemetry(), "pik2"),
	}
	for _, id := range env.Nodes() {
		p.agents[id] = newAgent(p, id, pr[id])
	}
	return p
}

// SetCorruptor installs protocol-faulty reporting at router r.
func (p *Protocol) SetCorruptor(r packet.NodeID, c Corruptor) {
	p.agents[r].corrupt = c
}

// RefreshOracle replaces the path-prediction oracle after a routing change
// (the Fatih coordinator is "kept abreast of routing changes so that it
// always knows which path-segments should be monitored", §5.3.1).
// Monitored segments whose paths no longer carry traffic validate trivially
// (both ends see nothing); newly used paths are monitored again once their
// segments coincide with the refreshed predictions.
func (p *Protocol) RefreshOracle(g *topology.Graph) {
	p.oracle = NewPathOracle(g)
}

// RefreshPaths replaces the oracle with explicit routing paths traced from
// the live forwarding tables (which include path-segment exclusions).
func (p *Protocol) RefreshPaths(paths []topology.Path) {
	p.oracle = tvinfo.NewPathOracleFromPaths(paths)
}

// newSketch allocates a counting-Bloom sketch with the deployment's shared
// geometry (both ends must agree for Merge/DiffEstimate to be defined).
func (p *Protocol) newSketch() *summary.CountingBloom {
	return summary.NewCountingBloom(p.opts.SketchCapacity, p.opts.SketchFPRate)
}

// reconcilePoints returns the shared evaluation points (public; secrecy is
// not required, only agreement). One extra point verifies the rational fit.
// The slice is cached; callers must not mutate it.
func (p *Protocol) reconcilePoints() []uint64 {
	if p.recPts == nil {
		p.recPts = summary.ReconcilePoints(p.opts.ReconcileBudget + 2)
	}
	return p.recPts
}

// Round returns the validation interval τ.
func (p *Protocol) Round() time.Duration { return p.opts.Round }

// BandwidthBytes returns the total summary-exchange payload bytes sent by
// all routers so far (§5.2.1/§7 overhead accounting).
func (p *Protocol) BandwidthBytes() int64 {
	var total int64
	for _, a := range p.agents {
		total += a.bytesSent
	}
	return total
}

// Agent returns router r's protocol agent (tests).
func (p *Protocol) Agent(r packet.NodeID) *Agent { return (*Agent)(p.agents[r]) }

// Agent is the exported read-only view of a router's protocol state.
type Agent agent

// MonitoredSegments returns the segments the router monitors (its Pr).
func (a *Agent) MonitoredSegments() []topology.Segment {
	out := make([]topology.Segment, 0, len(a.segs))
	for _, st := range a.segOrder {
		out = append(out, st.seg)
	}
	return out
}

// PathOracle predicts deterministic routing paths; see tvinfo.PathOracle.
type PathOracle = tvinfo.PathOracle

// NewPathOracle precomputes all-pairs deterministic paths.
func NewPathOracle(g *topology.Graph) *PathOracle { return tvinfo.NewPathOracle(g) }

// Summary is one end's traffic information for a segment-round; see
// tvinfo.Summary.
type Summary = tvinfo.Summary

// NewSummary allocates the structures the policy needs.
func NewSummary(policy Policy) *Summary { return tvinfo.NewSummary(policy) }

// SummaryMsg is the exchanged control payload. Under ExchangeFull, Summary
// is set; under ExchangeReconcile, Count and Evals carry the fingerprint
// multiset's size and characteristic-polynomial evaluations instead; under
// ExchangeSketch, Count and Sketch carry the multiset's size and its
// counting-Bloom sketch.
type SummaryMsg struct {
	Seg   topology.Segment
	Round int
	From  packet.NodeID

	Summary *Summary

	Count int
	Evals []uint64

	Sketch *summary.CountingBloom

	Sig auth.Signature
}

// WireBytes estimates the message's serialized size, for the §5.2.1/§7
// overhead comparison.
func (m *SummaryMsg) WireBytes() int {
	n := 4*len(m.Seg) + 8 /*round*/ + 4 /*from*/ + 32 /*sig*/
	if m.Summary != nil {
		n += m.Summary.EncodedLen()
	}
	n += 8 + 8*len(m.Evals)
	if m.Sketch != nil {
		n += m.Sketch.SizeBytes()
	}
	return n
}

// appendSignedBody appends the byte string the sender signs — the summary
// (or its reconciliation evaluations) bound to its segment, round and
// sender — to b and returns the extended slice. The exchange path reuses
// one per-Protocol buffer through it.
func appendSignedBody(b []byte, m *SummaryMsg) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(m.From))
	b = binary.BigEndian.AppendUint64(b, uint64(m.Round))
	b = topology.AppendKey(b, m.Seg)
	if m.Summary != nil {
		b = m.Summary.AppendEncode(b)
	}
	b = binary.BigEndian.AppendUint64(b, uint64(m.Count))
	for _, e := range m.Evals {
		b = binary.BigEndian.AppendUint64(b, e)
	}
	if m.Sketch != nil {
		b = m.Sketch.AppendEncode(b)
	}
	return b
}

// signedBody binds the summary (or its reconciliation evaluations) to its
// segment, round and sender.
func signedBody(m *SummaryMsg) []byte {
	return appendSignedBody(make([]byte, 0, 64), m)
}

// AlertBody encodes a flooded suspicion for signing.
func AlertBody(by packet.NodeID, round int, seg topology.Segment) []byte {
	b := make([]byte, 0, 16+4*len(seg))
	b = binary.BigEndian.AppendUint32(b, uint32(by))
	b = binary.BigEndian.AppendUint64(b, uint64(round))
	return topology.AppendKey(b, seg)
}
