package pik2_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"routerwatch/internal/detector"
	"routerwatch/internal/mutation"
	"routerwatch/internal/protocol"
	_ "routerwatch/internal/protocol/catalog"
)

// TestSketchConformance asserts that sketch-mode summary exchange reaches
// the same suspicion verdicts as the full fingerprint-list exchange on
// every committed golden scenario: the line5drop shape behind the capture
// golden, plus every Πk+2 scenario in the surviving-mutant corpus. The
// transcripts are compared in canonical rendering excluding Detail (the
// human-readable explanation legitimately names the mode); By, Segment,
// Round, At, Kind and Confidence must all match byte for byte.
func TestSketchConformance(t *testing.T) {
	specs := map[string]func() *protocol.Spec{
		"line5drop": conformanceLine5Spec,
	}
	survs, err := mutation.LoadSurvivors("../../mutation/testdata/survivors")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range survs {
		if s.Spec.Protocol != "pik2" {
			continue
		}
		s := s
		specs["survivor-"+s.ID] = func() *protocol.Spec { return s.Spec }
	}
	if len(specs) < 2 {
		t.Fatal("no pik2 survivor scenarios found — corpus moved?")
	}

	for name, mk := range specs {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			full := runWithExchange(t, mk(), "")
			sketch := runWithExchange(t, mk(), "sketch")
			if full != sketch {
				t.Errorf("verdicts diverge between exchange modes\nfull:\n%s\nsketch:\n%s", full, sketch)
			}
		})
	}
}

// runWithExchange runs the spec with the given exchange mode forced (empty
// keeps the spec's own, i.e. full) and returns the canonical verdict
// transcript, Detail excluded.
func runWithExchange(t *testing.T, spec *protocol.Spec, exchange string) string {
	t.Helper()
	opts := make(protocol.Params, len(spec.Options)+1)
	for k, v := range spec.Options {
		opts[k] = v
	}
	if exchange != "" {
		opts["exchange"] = exchange
	}
	run := *spec
	run.Options = opts
	res, err := protocol.Run(&run, protocol.RunOptions{})
	if err != nil {
		t.Fatalf("run (exchange=%q): %v", exchange, err)
	}
	return renderVerdicts(res.Log)
}

// renderVerdicts flattens a suspicion log into the byte-comparable
// canonical form: Suspicion.String() minus the Detail field.
func renderVerdicts(log *detector.Log) string {
	var b strings.Builder
	for _, s := range log.All() {
		fmt.Fprintf(&b, "t=%v %v suspects %v round=%d kind=%v conf=%.4f\n",
			s.At, s.By, s.Segment, s.Round, s.Kind, s.Confidence)
	}
	return b.String()
}

// conformanceLine5Spec mirrors the capture golden's line5drop scenario: a
// 5-router line with the middle router dropping 30% from t=1s.
func conformanceLine5Spec() *protocol.Spec {
	return &protocol.Spec{
		Name:     "line5drop-conformance",
		Protocol: "pik2",
		Options: protocol.Params{
			"k": "1", "round": "1s", "timeout": "250ms",
			"loss-threshold": "2", "fabrication-threshold": "2",
		},
		Seed:     1,
		Duration: protocol.Duration(4 * time.Second),
		Jitter:   protocol.Duration(100 * time.Microsecond),
		Topology: protocol.TopologySpec{Kind: "line", N: 5},
		Attack: &protocol.AttackSpec{
			Kind: "drop", Node: 2, Rate: 0.3,
			Start: protocol.Duration(time.Second),
		},
		Traffic: []protocol.TrafficSpec{{
			Kind: "pair", Src: 0, Dst: 4, Count: 400,
			Interval: protocol.Duration(10 * time.Millisecond),
			Offset:   protocol.Duration(time.Microsecond),
			Size:     500, Flow: 1, ReverseFlow: 2,
		}},
	}
}
