package pik2

import (
	"math/rand"
	"testing"
	"time"

	"routerwatch/internal/attack"
	"routerwatch/internal/detector"
	"routerwatch/internal/network"
	"routerwatch/internal/packet"
	"routerwatch/internal/topology"
)

func reconcileOpts(log *detector.Log) Options {
	o := testOpts(log)
	o.Exchange = ExchangeReconcile
	return o
}

func TestReconcileNoAttackNoSuspicions(t *testing.T) {
	log := detector.NewLog()
	net := network.New(topology.Line(4), network.Options{Seed: 61, ProcessingJitter: 100 * time.Microsecond})
	Attach(net, reconcileOpts(log))
	pump(net, 0, 3, 2000, 1)
	pump(net, 3, 0, 2000, 2)
	net.Run(4 * time.Second)
	if log.Len() != 0 {
		t.Fatalf("false positives under reconciliation exchange: %v", log.All())
	}
}

func TestReconcileDetectsSmallDrop(t *testing.T) {
	// A subtle attack: drop a handful of packets per round — above the
	// loss threshold but within the reconciliation budget, so the exact
	// missing fingerprints are recovered.
	log := detector.NewLog()
	net := network.New(topology.Line(3), network.Options{Seed: 62})
	Attach(net, reconcileOpts(log))
	net.Router(1).SetBehavior(&attack.Dropper{
		Select: attack.All, P: 0.01, Rng: rand.New(rand.NewSource(3)),
	})
	pump(net, 0, 2, 2000, 1)
	net.Run(4 * time.Second)
	if log.Len() == 0 {
		t.Fatal("1% drop not detected under reconciliation exchange")
	}
	gt := detector.NewGroundTruth([]packet.NodeID{1}, nil)
	if v := detector.CheckAccuracy(log, gt, 3); len(v) != 0 {
		t.Fatalf("accuracy violations: %v", v)
	}
}

func TestReconcileBudgetOverflowStillDetects(t *testing.T) {
	// A massive drop overflows the reconciliation budget; the overflow is
	// itself conclusive evidence.
	log := detector.NewLog()
	net := network.New(topology.Line(3), network.Options{Seed: 63})
	Attach(net, reconcileOpts(log))
	net.Router(1).SetBehavior(&attack.Dropper{Select: attack.All, P: 1})
	pump(net, 0, 2, 500, 1)
	net.Run(3 * time.Second)
	if log.Len() == 0 {
		t.Fatal("total drop not detected under reconciliation exchange")
	}
}

func TestReconcileBandwidthMuchSmaller(t *testing.T) {
	// The point of Appendix A: exchange bandwidth proportional to the
	// difference, not the traffic. Same workload, both modes.
	run := func(mode ExchangeMode) int64 {
		log := detector.NewLog()
		net := network.New(topology.Line(3), network.Options{Seed: 64})
		opts := testOpts(log)
		opts.Exchange = mode
		p := Attach(net, opts)
		pump(net, 0, 2, 3000, 1)
		net.Run(4 * time.Second)
		if log.Len() != 0 {
			t.Fatalf("mode %v: unexpected suspicions %v", mode, log.All())
		}
		return p.BandwidthBytes()
	}
	full := run(ExchangeFull)
	recon := run(ExchangeReconcile)
	if recon*5 >= full {
		t.Fatalf("reconciliation bandwidth %d not ≪ full %d", recon, full)
	}
}

func TestReconcileRequiresContentPolicy(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ExchangeReconcile with PolicyOrder did not panic")
		}
	}()
	log := detector.NewLog()
	net := network.New(topology.Line(3), network.Options{Seed: 65})
	opts := reconcileOpts(log)
	opts.Policy = PolicyOrder
	Attach(net, opts)
}

func TestReconcileModificationDetected(t *testing.T) {
	// Modification = one missing + one extra fingerprint: reconciliation
	// recovers both sides of the difference.
	log := detector.NewLog()
	net := network.New(topology.Line(3), network.Options{Seed: 66})
	opts := reconcileOpts(log)
	opts.LossThreshold = 0
	opts.FabricationThreshold = 0
	Attach(net, opts)
	net.Router(1).SetBehavior(&attack.Modifier{Select: attack.ByFlow(1), Start: 600 * time.Millisecond})
	// Sparse traffic well inside round interiors to avoid boundary noise
	// with zero thresholds.
	for i := 0; i < 40; i++ {
		i := i
		net.Scheduler().At(time.Duration(100+i*20)*time.Millisecond, func() {
			net.Inject(0, &packet.Packet{Dst: 2, Size: 500, Flow: 1, Seq: uint32(i), Payload: uint64(i)})
		})
	}
	net.Run(3 * time.Second)
	found := false
	for _, s := range log.All() {
		if s.Kind == detector.KindTrafficValidation && s.Segment.Contains(1) {
			found = true
		}
	}
	if !found {
		t.Fatalf("modification not detected: %v", log.All())
	}
}
