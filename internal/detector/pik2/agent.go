package pik2

import (
	"fmt"
	"time"

	"routerwatch/internal/auth"
	"routerwatch/internal/consensus"
	"routerwatch/internal/detector"
	"routerwatch/internal/detector/tvinfo"
	"routerwatch/internal/network"
	"routerwatch/internal/packet"
	"routerwatch/internal/summary"
	"routerwatch/internal/topology"
	"routerwatch/internal/validate"
)

// segRole is this router's end of a monitored segment.
type segRole int

const (
	roleSource segRole = iota + 1 // seg[0]: records traffic sent into π
	roleSink                      // seg[len-1]: records traffic received from π
)

// segState is per-(router, monitored segment) state.
type segState struct {
	seg  topology.Segment
	key  topology.SegmentKey
	role segRole
	peer packet.NodeID
	// links are the segment's directed links, used to predict the
	// traversal time from the source end's dequeue to the sink end's
	// receive; packets are binned into rounds by predicted arrival time at
	// the sink so both ends agree on binning.
	links  []topology.Link
	sample summary.SampleRange

	// cur accumulates per-round summaries keyed by round index.
	cur map[int]*Summary
	// peerMsgs holds validated summary messages received from the peer.
	peerMsgs map[int]*SummaryMsg
	// validated marks rounds already judged.
	validated map[int]bool
}

// agent is the per-router protocol engine.
type agent struct {
	p  *Protocol
	id packet.NodeID

	segs     map[topology.SegmentKey]*segState
	segOrder []*segState

	corrupt Corruptor

	// suspected dedupes this agent's suspicions per segment.
	suspected map[topology.SegmentKey]bool

	// bytesSent accumulates summary-exchange payload bytes (§5.2.1/§7
	// overhead accounting).
	bytesSent int64

	// Round-boundary batching scratch: all of a boundary's outgoing
	// messages are encoded back to back, signed with one auth.SignBatch
	// pass, then sent in segment order. exSts parallels exMsgs.
	exMsgs   []*SummaryMsg
	exSts    []*segState
	exOffs   []int
	exBodies [][]byte
	exSigs   []auth.Signature
}

func newAgent(p *Protocol, id packet.NodeID, monitored []topology.Segment) *agent {
	a := &agent{
		p:         p,
		id:        id,
		segs:      make(map[topology.SegmentKey]*segState),
		suspected: make(map[topology.SegmentKey]bool),
	}
	g := p.env.Graph()
	for _, seg := range monitored {
		st := &segState{
			seg:       seg,
			key:       topology.Key(seg),
			cur:       make(map[int]*Summary),
			peerMsgs:  make(map[int]*SummaryMsg),
			validated: make(map[int]bool),
		}
		if seg[0] == a.id {
			st.role = roleSource
			st.peer = seg[len(seg)-1]
		} else {
			st.role = roleSink
			st.peer = seg[0]
		}
		for i := 0; i+1 < len(seg); i++ {
			if l, ok := g.Link(seg[i], seg[i+1]); ok {
				st.links = append(st.links, l)
			}
		}
		if f := p.opts.Sampling; f > 0 && f < 1 {
			k0, k1 := p.env.Auth().SamplingKeys(seg[0], seg[len(seg)-1])
			st.sample = summary.SampleRange{K0: k0, K1: k1, Fraction: f}
		} else {
			st.sample = summary.SampleRange{Fraction: 1}
		}
		a.segs[st.key] = st
		a.segOrder = append(a.segOrder, st)
	}

	p.env.Tap(a.id, a.onEvent)
	p.env.HandleControl(a.id, KindSummary, a.onSummary)
	p.flood.Subscribe(a.id, TopicAlert, a.onAlert)

	// Round ticks: snapshot/exchange at each boundary, judge at boundary+µ.
	round := 0
	p.env.Every(p.opts.Round, func() {
		n := round
		round++
		a.exchangeRound(n)
		p.env.After(p.opts.Timeout, func() { a.judgeRound(n) })
	})
	return a
}

// roundOf bins a sink-side timestamp into a round index.
func (a *agent) roundOf(ts time.Duration) int { return int(ts / a.p.opts.Round) }

// transit predicts how long a size-byte packet takes from the source end's
// dequeue to the sink end's receive: per-link transmission plus propagation
// (queueing and processing jitter at interior routers are unpredictable and
// absorbed by the loss threshold).
func (st *segState) transit(size int) time.Duration {
	var d time.Duration
	for _, l := range st.links {
		d += l.Delay + l.TransmissionTime(size)
	}
	return d
}

// onEvent observes the router's local packet events and updates segment
// summaries.
func (a *agent) onEvent(ev network.Event) {
	switch ev.Kind {
	case network.EvDequeue:
		for _, st := range a.segOrder {
			if st.role != roleSource || st.seg[1] != ev.Peer {
				continue
			}
			if !a.p.oracle.OnSegment(ev.Packet.Src, ev.Packet.Dst, ev.Packet.Flow, st.seg, a.id, 0) {
				continue
			}
			a.record(st, ev.Packet, ev.Time+st.transit(ev.Packet.Size))
		}
	case network.EvReceive:
		for _, st := range a.segOrder {
			if st.role != roleSink || st.seg[len(st.seg)-2] != ev.Peer {
				continue
			}
			if !a.p.oracle.OnSegment(ev.Packet.Src, ev.Packet.Dst, ev.Packet.Flow, st.seg, a.id, len(st.seg)-1) {
				continue
			}
			a.record(st, ev.Packet, ev.Time)
		}
	}
}

func (a *agent) record(st *segState, p *packet.Packet, sinkTS time.Duration) {
	fp := a.p.env.Hasher().Fingerprint(p)
	if !st.sample.Selects(fp) {
		return
	}
	n := a.roundOf(sinkTS)
	s := st.cur[n]
	if s == nil {
		s = NewSummary(a.p.opts.Policy)
		st.cur[n] = s
	}
	s.RecordTimed(fp, p.Size, sinkTS)
	a.p.tel.Fingerprints.Inc()
}

// exchangeRound sends this router's summary for round n on every monitored
// segment, through the segment itself. The boundary is batched: every
// segment's message is encoded into one buffer first, the whole set is
// signed with a single auth.SignBatch pass (one lock and pad-state setup
// for the boundary instead of one per segment), and the messages then go
// out in segment order.
func (a *agent) exchangeRound(n int) {
	a.exMsgs = a.exMsgs[:0]
	a.exSts = a.exSts[:0]
	a.exOffs = a.exOffs[:0]
	buf := a.p.bodyBuf[:0]
	for _, st := range a.segOrder {
		s := st.cur[n]
		if s == nil {
			s = NewSummary(a.p.opts.Policy)
			st.cur[n] = s
		}
		if a.corrupt != nil {
			replaced := a.corrupt(st.seg, n, s)
			if replaced == nil {
				continue // protocol faulty: silently does not report
			}
			s = replaced
		}
		msg := &SummaryMsg{Seg: st.seg, Round: n, From: a.id}
		switch a.p.opts.Exchange {
		case ExchangeReconcile:
			fps := fpMultiset(s)
			msg.Count = len(fps)
			msg.Evals = summary.EvaluateCharPoly(fps, a.p.reconcilePoints())
		case ExchangeSketch:
			fps := fpMultiset(s)
			msg.Count = len(fps)
			sk := a.p.newSketch()
			for _, fp := range fps {
				sk.Add(packet.Fingerprint(fp))
			}
			msg.Sketch = sk
		default:
			msg.Summary = s
		}
		a.exOffs = append(a.exOffs, len(buf))
		buf = appendSignedBody(buf, msg)
		a.exMsgs = append(a.exMsgs, msg)
		a.exSts = append(a.exSts, st)
	}
	a.p.bodyBuf = buf
	if len(a.exMsgs) == 0 {
		return
	}
	a.exBodies = a.exBodies[:0]
	for i, off := range a.exOffs {
		end := len(buf)
		if i+1 < len(a.exOffs) {
			end = a.exOffs[i+1]
		}
		a.exBodies = append(a.exBodies, buf[off:end])
	}
	a.exSigs = a.p.env.Auth().SignBatch(a.id, a.exBodies, a.exSigs[:0])
	a.p.tel.BatchEntries.Observe(int64(len(a.exMsgs)))

	for i, msg := range a.exMsgs {
		st := a.exSts[i]
		msg.Sig = a.exSigs[i]
		wire := int64(msg.WireBytes())
		a.bytesSent += wire
		a.p.tel.Summaries.Inc()
		a.p.tel.SummaryBytes.Add(wire)

		// The exchange travels through π itself (§5.2.1): source→sink
		// along the segment, sink→source along its reverse.
		path := append(topology.Path(nil), st.seg...)
		if st.role == roleSink {
			for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
				path[i], path[j] = path[j], path[i]
			}
		}
		a.p.env.SendControl(&network.ControlMessage{
			From: a.id, To: st.peer, Kind: KindSummary,
			Payload: msg, Path: path,
		})
	}
}

// onSummary receives a peer's summary.
func (a *agent) onSummary(cm *network.ControlMessage) {
	msg, ok := cm.Payload.(*SummaryMsg)
	if !ok {
		return
	}
	switch a.p.opts.Exchange {
	case ExchangeReconcile:
		if msg.Evals == nil {
			return
		}
	case ExchangeSketch:
		if msg.Sketch == nil {
			return
		}
	default:
		if msg.Summary == nil {
			return
		}
	}
	st := a.segs[topology.Key(msg.Seg)]
	if st == nil || msg.From != st.peer {
		return
	}
	a.p.bodyBuf = appendSignedBody(a.p.bodyBuf[:0], msg)
	if !a.p.env.Auth().Verify(a.p.bodyBuf, msg.Sig) || msg.Sig.Signer != msg.From {
		return
	}
	st.peerMsgs[msg.Round] = msg
	// If we already passed the judgement deadline for this round the
	// timeout suspicion stands; late summaries are not re-judged.
}

// judgeRound runs at round boundary + µ: exchange failures and TV failures
// become suspicions.
func (a *agent) judgeRound(n int) {
	for _, st := range a.segOrder {
		if st.validated[n] {
			continue
		}
		st.validated[n] = true
		a.p.tel.Rounds.Inc()
		local := st.cur[n]
		delete(st.cur, n)
		peer := st.peerMsgs[n]
		delete(st.peerMsgs, n)

		if peer == nil {
			// Exchange failed within µ: some router in π is protocol
			// faulty (or the peer is), suspect π (Fig 5.3).
			a.suspect(st, n, detector.KindExchangeTimeout, 1,
				fmt.Sprintf("no summary from %v within %v", st.peer, a.p.opts.Timeout))
			continue
		}
		if local == nil {
			local = NewSummary(a.p.opts.Policy)
		}
		if a.p.opts.Exchange == ExchangeReconcile {
			a.judgeReconcile(st, n, local, peer)
			continue
		}
		if a.p.opts.Exchange == ExchangeSketch {
			a.judgeSketch(st, n, local, peer)
			continue
		}
		var up, down *Summary
		if st.role == roleSource {
			up, down = local, peer.Summary
		} else {
			up, down = peer.Summary, local
		}
		if res := a.p.validateTV(up, down); !res.OK {
			a.suspect(st, n, detector.KindTrafficValidation, 1, res.String())
		}
	}
	if len(a.segOrder) > 0 {
		a.p.tel.RoundSpan("pik2 round", n, a.p.opts.Round, a.p.env.Now(), int32(a.id))
	}
}

// judgeReconcile validates via Appendix A's set reconciliation: the exact
// multiset difference between the two ends' fingerprint sets is recovered
// from the peer's characteristic-polynomial evaluations and the local set.
func (a *agent) judgeReconcile(st *segState, n int, local *Summary, peer *SummaryMsg) {
	points := a.p.reconcilePoints()
	localFPs := fpMultiset(local)
	localEvals := summary.EvaluateCharPoly(localFPs, points)

	var upEvals, downEvals []uint64
	var upCount, downCount int
	if st.role == roleSource {
		upEvals, upCount = localEvals, len(localFPs)
		downEvals, downCount = peer.Evals, peer.Count
	} else {
		upEvals, upCount = peer.Evals, peer.Count
		downEvals, downCount = localEvals, len(localFPs)
	}
	if len(peer.Evals) != len(points) {
		a.suspect(st, n, detector.KindTrafficValidation, 1, "malformed reconciliation evaluations")
		return
	}
	onlyUp, onlyDown, err := summary.Reconcile(upEvals, downEvals, points, upCount, downCount)
	if err != nil {
		// The set difference exceeds the budget, which itself exceeds the
		// loss/fabrication thresholds: conclusive validation failure.
		a.suspect(st, n, detector.KindTrafficValidation, 1,
			fmt.Sprintf("set difference exceeds reconciliation budget %d: %v",
				a.p.opts.ReconcileBudget, err))
		return
	}
	lost, fabricated := len(onlyUp), len(onlyDown)
	if lost > a.p.opts.LossThreshold || fabricated > a.p.opts.FabricationThreshold {
		a.suspect(st, n, detector.KindTrafficValidation, 1,
			fmt.Sprintf("reconciled difference: %d lost, %d fabricated", lost, fabricated))
	}
}

// judgeSketch validates via the counting-Bloom sketch: the local multiset
// is sketched with the deployment's shared geometry and differenced
// cell-wise against the peer's sketch; the upstream surplus estimates loss,
// the downstream surplus fabrication, judged against the same thresholds as
// ContentTV's full fingerprint-list comparison. When one end's multiset
// contains the other's (the pure-loss case every drop attack produces) the
// estimates are exact and the verdict is identical to full mode.
func (a *agent) judgeSketch(st *segState, n int, local *Summary, peer *SummaryMsg) {
	localFPs := fpMultiset(local)
	sk := a.p.newSketch()
	for _, fp := range localFPs {
		sk.Add(packet.Fingerprint(fp))
	}
	if peer.Sketch == nil || !sk.Compatible(peer.Sketch) {
		a.suspect(st, n, detector.KindTrafficValidation, 1, "malformed or incompatible sketch")
		return
	}
	var up, down *summary.CountingBloom
	var upCount, downCount int
	if st.role == roleSource {
		up, upCount = sk, len(localFPs)
		down, downCount = peer.Sketch, peer.Count
	} else {
		up, upCount = peer.Sketch, peer.Count
		down, downCount = sk, len(localFPs)
	}
	lost, fabricated := up.DiffEstimate(down)
	// Self-consistency residual: the signed surplus difference must equal
	// the exact count difference (cell sums are k·n on each side); any
	// deviation is collision-induced estimation error, measurable without
	// the peer's full summary.
	residual := (lost - fabricated) - (upCount - downCount)
	if residual < 0 {
		residual = -residual
	}
	a.p.tel.SketchError.Observe(int64(residual))
	if lost > a.p.opts.LossThreshold || fabricated > a.p.opts.FabricationThreshold {
		a.suspect(st, n, detector.KindTrafficValidation, 1,
			fmt.Sprintf("sketched difference: ~%d lost, ~%d fabricated", lost, fabricated))
	}
}

// fpMultiset expands a summary's fingerprint multiset into field elements.
func fpMultiset(s *Summary) []uint64 {
	if s.FPs == nil {
		return nil
	}
	out := make([]uint64, 0, s.FPs.Len())
	for _, fp := range s.FPs.Fingerprints() {
		for i := 0; i < s.FPs.Count(fp); i++ {
			out = append(out, uint64(fp))
		}
	}
	return out
}

// validateTV applies the configured conservation policy (§4.2.1's TV
// predicate).
func (p *Protocol) validateTV(up, down *Summary) validate.Result {
	th := tvinfo.Thresholds{
		Loss:        p.opts.LossThreshold,
		Fabrication: p.opts.FabricationThreshold,
		Reorder:     p.opts.ReorderThreshold,
		MaxDelay:    p.opts.MaxDelay,
		Late:        p.opts.LateThreshold,
	}
	return tvinfo.Validate(p.opts.Policy, th, up, down)
}

// suspect raises and floods a suspicion of st.seg.
func (a *agent) suspect(st *segState, round int, kind detector.Kind, conf float64, detail string) {
	if a.suspected[st.key] {
		return
	}
	a.suspected[st.key] = true
	s := detector.Suspicion{
		By: a.id, Segment: st.seg, Round: round,
		At: a.p.env.Now(), Kind: kind, Confidence: conf, Detail: detail,
	}
	a.p.opts.Sink(s)
	a.p.tel.ObserveSuspicion(s, detector.RoundEnd(round, a.p.opts.Round))
	if a.p.opts.Responder != nil {
		a.p.opts.Responder(a.id, st.seg)
	}
	// Reliable broadcast of [π]r (Fig 5.3): strong completeness.
	a.p.flood.Flood(a.id, TopicAlert, fmt.Sprintf("%d", round), AlertBody(a.id, round, st.seg))
}

// onAlert accepts another router's flooded suspicion: verify the flood
// signature (done by the consensus layer), require the announcer to be a
// member of the suspected segment, and adopt the suspicion.
func (a *agent) onAlert(m consensus.Msg) {
	by, round, seg, ok := decodeAlert(m.Payload)
	if !ok || by != m.Origin {
		return
	}
	if !seg.Contains(by) {
		return // a non-member announcement could frame correct routers
	}
	if by == a.id {
		return
	}
	key := topology.Key(seg)
	if a.suspected[key] {
		return
	}
	a.suspected[key] = true
	s := detector.Suspicion{
		By: a.id, Segment: seg, Round: round, At: a.p.env.Now(),
		Kind: detector.KindTrafficValidation, Confidence: 1,
		Detail: fmt.Sprintf("announced by %v", by),
	}
	a.p.opts.Sink(s)
	a.p.tel.ObserveSuspicion(s, detector.RoundEnd(round, a.p.opts.Round))
	if a.p.opts.Responder != nil {
		a.p.opts.Responder(a.id, seg)
	}
}

func decodeAlert(b []byte) (by packet.NodeID, round int, seg topology.Segment, ok bool) {
	if len(b) < 12 || (len(b)-12)%4 != 0 {
		return 0, 0, nil, false
	}
	by = packet.NodeID(int32(uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])))
	var r uint64
	for i := 4; i < 12; i++ {
		r = r<<8 | uint64(b[i])
	}
	round = int(r)
	seg = topology.DecodeKey(topology.SegmentKey(b[12:]))
	if len(seg) == 0 {
		return 0, 0, nil, false
	}
	return by, round, seg, true
}
