// Scale options for the routing substrate on internet-scale topologies.
//
// The legacy Attach path floods every LSA as its own control message and
// recomputes every router's table in its own event — fine for a dozen
// routers, quadratic pain for a thousand. AttachWith keeps that path
// byte-identical under zero Options and adds three opt-in mechanisms:
//
//   - StaggerRegions quantizes initial LSA origination to the router's
//     region (PoP) index instead of its router index, so a 1000-router
//     topology starts flooding within its region count in milliseconds
//     rather than a full second.
//   - BundleFlood batches re-flooding: LSAs accepted within FloodHold of
//     each other leave as one bundle message per neighbor. Novelty is still
//     seq-gated per LSA at the receiver, so bundles terminate exactly like
//     per-LSA flooding.
//   - BatchCompute coalesces all recomputes that land on the same simulated
//     instant into one event: tables are prepared concurrently on the
//     runner pool (each prepare touches only daemon-private state, see
//     Daemon.prepare) and installed sequentially in router-ID order, which
//     fixes the installation order independent of worker interleaving.
//
// The options change which events exist and therefore the event-sequence
// numbering; runs with different Options are internally deterministic but
// not byte-comparable to each other. Attach == AttachWith(Options{Timers})
// is the compatibility anchor the golden fixtures pin.
package routing

import (
	"sort"
	"time"

	"routerwatch/internal/auth"
	"routerwatch/internal/network"
	"routerwatch/internal/packet"
	"routerwatch/internal/runner"
)

// KindLSABundle carries a batch of LSAs in one control message
// (Options.BundleFlood).
const KindLSABundle = "routing/lsab"

// LSABundle is the payload of a KindLSABundle message.
type LSABundle struct {
	LSAs []*LSA
}

// Options configures AttachWith. The zero value reproduces Attach exactly.
type Options struct {
	// Timers are the OSPF delay/hold timers; zero means DefaultTimers.
	Timers Timers

	// StaggerRegions originates initial LSAs at (region index) ms instead of
	// (router index) ms: routers in the same region originate at the same
	// instant, in router-ID event order.
	StaggerRegions bool

	// BundleFlood collects accepted LSAs for FloodHold and re-floods them as
	// one bundle per neighbor instead of one message per LSA.
	BundleFlood bool
	// FloodHold is the bundling delay; 0 means 1ms. Only meaningful with
	// BundleFlood.
	FloodHold time.Duration

	// BatchCompute coalesces same-instant table recomputes into one event,
	// preparing tables in parallel on Workers goroutines (0 = GOMAXPROCS,
	// 1 = serial) and installing them in router-ID order.
	BatchCompute bool
	Workers      int
}

// AttachWith creates and starts a daemon on every router with the given
// scale options. See Attach for the default-path contract.
func AttachWith(net *network.Network, opts Options) *Protocol {
	if opts.Timers.Delay == 0 && opts.Timers.Hold == 0 {
		opts.Timers = DefaultTimers()
	}
	if opts.BundleFlood && opts.FloodHold == 0 {
		opts.FloodHold = time.Millisecond
	}
	p := &Protocol{net: net, timers: opts.Timers, opts: opts}
	if opts.BatchCompute {
		p.due = make(map[time.Duration][]*Daemon)
	}
	for _, r := range net.Routers() {
		d := &Daemon{
			proto:     p,
			router:    r,
			id:        r.ID(),
			shard:     net.ShardOf(r.ID()),
			lsdb:      make(map[packet.NodeID]*LSA),
			seenAlert: make(map[packet.NodeID]uint64),
			excl:      NewExclusions(),
			timers:    opts.Timers,
			// Allow the very first computation to run immediately after
			// the delay timer regardless of hold.
			lastCompute: -opts.Timers.Hold,
		}
		r.HandleControl(KindLSA, d.handleLSA)
		r.HandleControl(KindLSABundle, d.handleLSABundle)
		r.HandleControl(KindAlert, d.handleAlert)
		p.daemons = append(p.daemons, d)
	}
	// Origin LSAs, staggered to avoid a synchronized burst: per router by
	// default, per region under StaggerRegions.
	g := net.Graph()
	for i, d := range p.daemons {
		d := d
		at := time.Duration(i) * time.Millisecond
		if opts.StaggerRegions {
			at = time.Duration(g.Region(d.id)) * time.Millisecond
		}
		net.Scheduler().AtShard(d.shard, at, d.originateLSA)
	}
	return p
}

// handleLSABundle processes a flooded LSA bundle: each member is accepted
// through the normal seq-gated path, and novel ones re-flood (bundled).
func (d *Daemon) handleLSABundle(m *network.ControlMessage) {
	b, ok := m.Payload.(*LSABundle)
	if !ok {
		return
	}
	for _, lsa := range b.LSAs {
		d.acceptLSA(lsa, m.From)
	}
}

// enqueueFlood defers re-flooding of a novel LSA to the next bundle flush.
func (d *Daemon) enqueueFlood(lsa *LSA) {
	d.pending = append(d.pending, lsa)
	if d.flushQueued {
		return
	}
	d.flushQueued = true
	sched := d.proto.net.Scheduler()
	sched.AtShard(d.shard, sched.Now()+d.proto.opts.FloodHold, d.flushPending)
}

// flushPending sends everything accepted since the last flush as one bundle
// to every neighbor. Bundles go to all neighbors, including the ones the
// member LSAs arrived from — the echo is stale at the receiver (seq-gated in
// acceptLSA), so flooding still terminates.
func (d *Daemon) flushPending() {
	d.flushQueued = false
	if len(d.pending) == 0 {
		return
	}
	b := &LSABundle{LSAs: d.pending}
	d.pending = nil
	for _, nb := range d.proto.net.Graph().Neighbors(d.id) {
		d.proto.net.SendControlDirect(d.id, nb, KindLSABundle, b, auth.Signature{})
	}
}

// runBatch fires one coalesced recompute instant: it prepares the batch's
// tables concurrently (each prepare is confined to its daemon, so the
// fan-out is race-free) and installs them serially in router-ID order —
// the full join plus fixed installation order keep the run deterministic
// for any worker count.
func (p *Protocol) runBatch(at time.Duration) {
	batch := p.due[at]
	delete(p.due, at)
	sort.Slice(batch, func(i, j int) bool { return batch[i].id < batch[j].id })
	// Warm the shared truth graph's lazy neighbor cache before fanning out.
	p.net.Graph().Neighbors(0)
	runner.Do(p.opts.Workers, len(batch), func(i int) { batch[i].prepare() })
	for _, d := range batch {
		d.install(at)
	}
}
