package routing

import (
	"math/rand"
	"testing"
	"time"

	"routerwatch/internal/network"
	"routerwatch/internal/packet"
	"routerwatch/internal/topology"
)

func TestComputeTablePlain(t *testing.T) {
	g := topology.Line(4)
	tables := make(map[packet.NodeID]*Table)
	excl := NewExclusions()
	for _, id := range g.Nodes() {
		tables[id] = ComputeTable(g, id, excl)
	}
	p := PathFromTables(tables, 0, 3, 10)
	if len(p) != 4 {
		t.Fatalf("path %v, want the 4-node line", p)
	}
}

func TestExclusionLinkRemoval(t *testing.T) {
	// Square: a-b-d and a-c-d. Exclude ⟨a,b⟩: traffic must go a-c-d.
	g := topology.NewGraph()
	a, b := g.AddNode("a"), g.AddNode("b")
	c, dd := g.AddNode("c"), g.AddNode("d")
	attrs := topology.DefaultLinkAttrs()
	g.AddDuplex(a, b, attrs)
	g.AddDuplex(b, dd, attrs)
	g.AddDuplex(a, c, attrs)
	g.AddDuplex(c, dd, attrs)

	excl := NewExclusions()
	if !excl.Add(topology.Segment{a, b}) {
		t.Fatal("Add returned false for fresh segment")
	}
	if excl.Add(topology.Segment{a, b}) {
		t.Fatal("duplicate Add returned true")
	}

	tables := make(map[packet.NodeID]*Table)
	for _, id := range g.Nodes() {
		tables[id] = ComputeTable(g, id, excl)
	}
	p := PathFromTables(tables, a, dd, 10)
	want := topology.Path{a, c, dd}
	if p.String() != want.String() {
		t.Fatalf("path %v, want %v", p, want)
	}
	// Reverse direction b→a is NOT excluded (directed exclusion).
	if p := PathFromTables(tables, b, a, 10); p == nil || len(p) != 2 {
		t.Fatalf("reverse path %v, want direct", p)
	}
}

func TestExclusionTransitionForbidden(t *testing.T) {
	// Line 0-1-2-3 plus detour 1-4-2. Excluding ⟨0,1,2⟩ forbids the
	// transition at 1, so 0's traffic goes 0-1-4-2-3, while 1's own
	// locally originated traffic may still use 1-2 directly.
	g := topology.Line(4)
	four := g.AddNode("n4")
	attrs := topology.DefaultLinkAttrs()
	g.AddDuplex(1, four, attrs)
	g.AddDuplex(four, 2, attrs)

	excl := NewExclusions()
	excl.Add(topology.Segment{0, 1, 2})

	tables := make(map[packet.NodeID]*Table)
	for _, id := range g.Nodes() {
		tables[id] = ComputeTable(g, id, excl)
	}
	p := PathFromTables(tables, 0, 3, 10)
	want := topology.Path{0, 1, four, 2, 3}
	if p.String() != want.String() {
		t.Fatalf("path %v, want %v", p, want)
	}
	// Locally originated traffic at 1 is unaffected by the transition.
	p1 := PathFromTables(tables, 1, 3, 10)
	want1 := topology.Path{1, 2, 3}
	if p1.String() != want1.String() {
		t.Fatalf("local path %v, want %v", p1, want1)
	}
}

func TestExclusionDisconnects(t *testing.T) {
	g := topology.Line(3)
	excl := NewExclusions()
	excl.Add(topology.Segment{0, 1})
	tbl := ComputeTable(g, 0, excl)
	if _, ok := tbl.NextHop(0, 2); ok {
		t.Fatal("excluded-only route still returned a next hop")
	}
}

func TestLongSegmentExclusion(t *testing.T) {
	e := NewExclusions()
	e.Add(topology.Segment{1, 2, 3, 4})
	if !e.TransitionForbidden(1, 2, 3) || !e.TransitionForbidden(2, 3, 4) {
		t.Fatal("interior transitions not forbidden")
	}
	if e.LinkExcluded(1, 2) {
		t.Fatal("4-segment should not remove links")
	}
	if e.Len() != 1 || !e.Has(topology.Segment{1, 2, 3, 4}) {
		t.Fatal("segment bookkeeping wrong")
	}
}

func newAbileneNet(t *testing.T) (*network.Network, *Protocol) {
	t.Helper()
	g := topology.Abilene()
	net := network.New(g, network.Options{Seed: 5})
	proto := Attach(net, Timers{Delay: time.Second, Hold: 2 * time.Second})
	if !proto.RunUntilConverged(time.Minute) {
		t.Fatal("routing did not converge")
	}
	return net, proto
}

func TestDaemonConvergence(t *testing.T) {
	net, proto := newAbileneNet(t)
	g := net.Graph()
	sunny, _ := g.Lookup("Sunnyvale")
	ny, _ := g.Lookup("NewYork")

	// After convergence, data-plane delivery works along the primary path.
	var deliveredAt time.Duration
	net.Router(ny).SetLocalHandler(func(p *packet.Packet) { deliveredAt = net.Now() })
	start := net.Now()
	net.Inject(sunny, &packet.Packet{Dst: ny, Size: 1000})
	net.Run(start + time.Second)
	if deliveredAt == 0 {
		t.Fatal("packet not delivered after convergence")
	}
	oneWay := deliveredAt - start
	// 25 ms propagation plus transmission times (1000B @ 100Mb/s = 80 µs/hop).
	if oneWay < 25*time.Millisecond || oneWay > 27*time.Millisecond {
		t.Fatalf("one-way latency %v, want ≈25ms", oneWay)
	}
	_ = proto
}

func TestAlertTriggersReroute(t *testing.T) {
	net, proto := newAbileneNet(t)
	g := net.Graph()
	sunny, _ := g.Lookup("Sunnyvale")
	ny, _ := g.Lookup("NewYork")
	den, _ := g.Lookup("Denver")
	kc, _ := g.Lookup("KansasCity")
	ind, _ := g.Lookup("Indianapolis")

	// Denver suspects ⟨Denver, KansasCity, Indianapolis⟩ and floods it.
	proto.Daemon(den).AnnounceSuspicion(topology.Segment{den, kc, ind})
	// Delay (1s) + margin for flooding.
	net.Run(net.Now() + 5*time.Second)

	var deliveredAt time.Duration
	var hops []packet.NodeID
	for _, r := range net.Routers() {
		r := r
		r.AddTap(func(ev network.Event) {
			if ev.Kind == network.EvReceive {
				hops = append(hops, ev.Router)
			}
		})
	}
	net.Router(ny).SetLocalHandler(func(p *packet.Packet) { deliveredAt = net.Now() })
	start := net.Now()
	net.Inject(sunny, &packet.Packet{Dst: ny, Size: 1000})
	net.Run(start + time.Second)

	if deliveredAt == 0 {
		t.Fatal("packet not delivered after reroute")
	}
	for _, h := range hops {
		if h == kc {
			t.Fatalf("packet still traversed Kansas City: hops %v", hops)
		}
	}
	oneWay := deliveredAt - start
	if oneWay < 27*time.Millisecond || oneWay > 30*time.Millisecond {
		t.Fatalf("post-reroute latency %v, want ≈28ms", oneWay)
	}
}

func TestBogusAlertRejected(t *testing.T) {
	net, proto := newAbileneNet(t)
	g := net.Graph()
	kc, _ := g.Lookup("KansasCity")
	ind, _ := g.Lookup("Indianapolis")
	chi, _ := g.Lookup("Chicago")
	sea, _ := g.Lookup("Seattle")

	// Seattle (not a member of the segment) announces a suspicion framing
	// Kansas City–Indianapolis–Chicago. Correct routers must ignore it.
	proto.Daemon(sea).AnnounceSuspicion(topology.Segment{kc, ind, chi})
	net.Run(net.Now() + 5*time.Second)
	for _, d := range proto.Daemons() {
		if d.ID() == sea {
			continue
		}
		if d.Exclusions().Len() != 0 {
			t.Fatalf("router %v accepted a non-member suspicion", d.ID())
		}
	}
}

func TestForgedAlertSignatureRejected(t *testing.T) {
	net, proto := newAbileneNet(t)
	g := net.Graph()
	den, _ := g.Lookup("Denver")
	kc, _ := g.Lookup("KansasCity")
	ind, _ := g.Lookup("Indianapolis")
	sea, _ := g.Lookup("Seattle")

	// Seattle forges an alert claiming to be from Denver without Denver's
	// key: signature verification must reject it.
	seg := topology.Segment{den, kc, ind}
	forged := &Alert{
		Announcer: den,
		Seq:       99,
		Segment:   seg,
		Sig:       net.Auth().Sign(sea, EncodeAlertBody(den, 99, seg)),
	}
	forged.Sig.Signer = den // lie about the signer
	for _, nb := range g.Neighbors(sea) {
		net.SendControlDirect(sea, nb, KindAlert, forged, forged.Sig)
	}
	net.Run(net.Now() + 5*time.Second)
	for _, d := range proto.Daemons() {
		if d.Exclusions().Len() != 0 {
			t.Fatalf("router %v accepted a forged alert", d.ID())
		}
	}
}

func TestHoldTimerBatchesRecomputations(t *testing.T) {
	g := topology.Abilene()
	net := network.New(g, network.Options{Seed: 5})
	proto := Attach(net, Timers{Delay: time.Second, Hold: 10 * time.Second})
	if !proto.RunUntilConverged(2 * time.Minute) {
		t.Fatal("no convergence")
	}
	den, _ := g.Lookup("Denver")
	kc, _ := g.Lookup("KansasCity")
	ind, _ := g.Lookup("Indianapolis")
	hou, _ := g.Lookup("Houston")

	d := proto.Daemon(den)
	var recomputes []time.Duration
	d.OnRecompute(func(at time.Duration) { recomputes = append(recomputes, at) })

	base := net.Now()
	d.AnnounceSuspicion(topology.Segment{den, kc, ind})
	net.Run(base + 100*time.Millisecond)
	d.AnnounceSuspicion(topology.Segment{den, kc, hou})
	net.Run(base + time.Minute)

	if len(recomputes) == 0 {
		t.Fatal("no recomputation happened")
	}
	for i := 1; i < len(recomputes); i++ {
		if gap := recomputes[i] - recomputes[i-1]; gap < 10*time.Second {
			t.Fatalf("recomputations %v apart, hold is 10s", gap)
		}
	}
	// First recompute at least Delay after the trigger.
	if recomputes[0] < base+time.Second {
		t.Fatalf("recompute at %v, before delay elapsed (base %v)", recomputes[0], base)
	}
}

func TestTableNextHopFallback(t *testing.T) {
	g := topology.Line(3)
	tbl := ComputeTable(g, 1, NewExclusions())
	// Unknown inbound neighbor falls back to the local row.
	nh, ok := tbl.NextHop(99, 2)
	if !ok || nh != 2 {
		t.Fatalf("fallback next hop = %v/%v", nh, ok)
	}
}

// Property: under random segment exclusions on random connected graphs,
// forwarding never loops — every (src, dst) either reaches its destination
// or is cleanly unroutable.
func TestNoLoopsUnderRandomExclusions(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		spec := topology.GeneratorSpec{
			Name: "p", Nodes: 14, Links: 22, MaxDegree: 6, Seed: int64(trial + 1),
		}
		g := topology.Generate(spec)
		rng := rand.New(rand.NewSource(int64(trial) + 99))
		excl := NewExclusions()
		// Random link and transition exclusions.
		links := g.Links()
		for i := 0; i < 4; i++ {
			l := links[rng.Intn(len(links))]
			excl.Add(topology.Segment{l.From, l.To})
		}
		for i := 0; i < 4; i++ {
			l := links[rng.Intn(len(links))]
			for _, w := range g.Neighbors(l.To) {
				if w != l.From {
					excl.Add(topology.Segment{l.From, l.To, w})
					break
				}
			}
		}
		tables := make(map[packet.NodeID]*Table)
		for _, id := range g.Nodes() {
			tables[id] = ComputeTable(g, id, excl)
		}
		for _, src := range g.Nodes() {
			for _, dst := range g.Nodes() {
				if src == dst {
					continue
				}
				p := PathFromTables(tables, src, dst, 3*g.NumNodes())
				if p == nil {
					continue // unroutable under exclusions: acceptable
				}
				if p[len(p)-1] != dst {
					t.Fatalf("trial %d: path %v does not end at %v", trial, p, dst)
				}
				// The delivered path must not traverse an excluded link or
				// forbidden transition.
				for i := 0; i+1 < len(p); i++ {
					if excl.LinkExcluded(p[i], p[i+1]) {
						t.Fatalf("trial %d: path %v uses excluded link", trial, p)
					}
				}
				for i := 0; i+2 < len(p); i++ {
					if excl.TransitionForbidden(p[i], p[i+1], p[i+2]) {
						t.Fatalf("trial %d: path %v uses forbidden transition", trial, p)
					}
				}
			}
		}
	}
}
