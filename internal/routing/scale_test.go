package routing

import (
	"testing"
	"time"

	"routerwatch/internal/network"
	"routerwatch/internal/packet"
	"routerwatch/internal/topology"
)

// tableMatrix snapshots every daemon's full forwarding behaviour: next hop
// for every (router, inbound context, destination) triple.
func tableMatrix(t *testing.T, proto *Protocol, g *topology.Graph) map[[3]packet.NodeID]packet.NodeID {
	t.Helper()
	m := make(map[[3]packet.NodeID]packet.NodeID)
	for _, d := range proto.Daemons() {
		tbl := d.Table()
		if tbl == nil {
			t.Fatalf("router %v has no table", d.ID())
		}
		contexts := append([]packet.NodeID{d.ID()}, g.Neighbors(d.ID())...)
		for _, from := range contexts {
			for _, dst := range g.Nodes() {
				nh, ok := tbl.NextHop(from, dst)
				if !ok {
					nh = -1
				}
				m[[3]packet.NodeID{d.ID(), from, dst}] = nh
			}
		}
	}
	return m
}

func ispGraph(t *testing.T) *topology.Graph {
	t.Helper()
	return topology.ISP(topology.ISPSpec{Nodes: 96, PoPs: 4, Seed: 11})
}

// All scale options on: the substrate must still converge to exactly the
// tables the legacy per-router/per-LSA path computes.
func TestScaleOptionsConvergeToLegacyTables(t *testing.T) {
	g := ispGraph(t)
	timers := Timers{Delay: time.Second, Hold: 2 * time.Second}

	legacyNet := network.New(g.Clone(), network.Options{Seed: 5})
	legacy := Attach(legacyNet, timers)
	if !legacy.RunUntilConverged(5 * time.Minute) {
		t.Fatal("legacy path did not converge")
	}

	scaledNet := network.New(g.Clone(), network.Options{Seed: 5, Shards: 4})
	scaled := AttachWith(scaledNet, Options{
		Timers:         timers,
		StaggerRegions: true,
		BundleFlood:    true,
		BatchCompute:   true,
		Workers:        4,
	})
	if !scaled.RunUntilConverged(5 * time.Minute) {
		t.Fatal("scaled path did not converge")
	}

	want := tableMatrix(t, legacy, g)
	got := tableMatrix(t, scaled, g)
	if len(want) != len(got) {
		t.Fatalf("matrix sizes differ: %d vs %d", len(want), len(got))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("next hop mismatch at router %v from %v dst %v: legacy %v, scaled %v",
				k[0], k[1], k[2], v, got[k])
		}
	}
}

// Batch preparation must be invariant in the worker count.
func TestBatchComputeWorkerInvariance(t *testing.T) {
	g := ispGraph(t)
	timers := Timers{Delay: time.Second, Hold: 2 * time.Second}
	run := func(workers int) map[[3]packet.NodeID]packet.NodeID {
		net := network.New(g.Clone(), network.Options{Seed: 9})
		p := AttachWith(net, Options{Timers: timers, BatchCompute: true, Workers: workers})
		if !p.RunUntilConverged(5 * time.Minute) {
			t.Fatalf("workers=%d did not converge", workers)
		}
		return tableMatrix(t, p, g)
	}
	serial := run(1)
	for _, w := range []int{4, 8} {
		if got := run(w); len(got) != len(serial) {
			t.Fatalf("workers=%d: matrix size %d vs %d", w, len(got), len(serial))
		} else {
			for k, v := range serial {
				if got[k] != v {
					t.Fatalf("workers=%d: mismatch at %v", w, k)
				}
			}
		}
	}
}

// Recompute memoization: when nothing the computation reads has changed, the
// installed table object is reused; any LSDB or exclusion change invalidates.
func TestRecomputeMemoization(t *testing.T) {
	g := topology.Abilene()
	net := network.New(g, network.Options{Seed: 5})
	proto := Attach(net, Timers{Delay: time.Second, Hold: 2 * time.Second})
	if !proto.RunUntilConverged(time.Minute) {
		t.Fatal("no convergence")
	}
	d := proto.Daemon(0)
	before := d.Table()
	d.prepare()
	if d.Table() != before {
		t.Fatal("prepare recomputed despite unchanged inputs")
	}
	// An exclusion change must invalidate the memo.
	d.excl.Add(topology.Segment{1, 2})
	d.prepare()
	if d.Table() == before {
		t.Fatal("prepare reused a table after the exclusion set changed")
	}
	// And a fresh LSA (seq bump) must as well.
	after := d.Table()
	d.originateLSA()
	d.prepare()
	if d.Table() == after {
		t.Fatal("prepare reused a table after an LSDB change")
	}
}

// Memoization must not suppress the observable installation: the forwarder
// is still reinstalled and the observer still fires on a memo hit.
func TestMemoHitStillInstalls(t *testing.T) {
	g := topology.Line(3)
	net := network.New(g, network.Options{Seed: 1})
	proto := Attach(net, Timers{Delay: 100 * time.Millisecond, Hold: 200 * time.Millisecond})
	if !proto.RunUntilConverged(time.Minute) {
		t.Fatal("no convergence")
	}
	d := proto.Daemon(0)
	fired := 0
	d.OnRecompute(func(at time.Duration) { fired++ })
	d.recompute()
	if fired != 1 {
		t.Fatalf("onRecompute fired %d times on a memo hit, want 1", fired)
	}
}

// Bundled flooding alone (no batching) still converges and the bundles
// terminate: total control traffic is finite and tables match legacy.
func TestBundleFloodConverges(t *testing.T) {
	g := ispGraph(t)
	timers := Timers{Delay: time.Second, Hold: 2 * time.Second}

	legacyNet := network.New(g.Clone(), network.Options{Seed: 3})
	legacy := Attach(legacyNet, timers)
	if !legacy.RunUntilConverged(5 * time.Minute) {
		t.Fatal("legacy did not converge")
	}

	net := network.New(g.Clone(), network.Options{Seed: 3})
	p := AttachWith(net, Options{Timers: timers, BundleFlood: true, FloodHold: 2 * time.Millisecond})
	if !p.RunUntilConverged(5 * time.Minute) {
		t.Fatal("bundled flooding did not converge")
	}
	want := tableMatrix(t, legacy, g)
	got := tableMatrix(t, p, g)
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("bundled tables diverge at %v: %v vs %v", k, v, got[k])
		}
	}
}
