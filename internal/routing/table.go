// Package routing implements the link-state routing substrate the detection
// protocols assume (§2.1.6, §4.1): LSA flooding, deterministic shortest-path
// computation, and — the response mechanism of §2.4.3/§5.3.1 — policy-based
// forwarding that excises suspected path-segments from the routing fabric.
//
// Exclusions are realized by routing on the line graph (states are directed
// links) with forbidden transitions: a suspected 2-segment ⟨a,b⟩ removes the
// directed link a→b, and a suspected x-segment forbids each of its interior
// transitions ⟨u,v,w⟩, so no traffic traverses the segment while the
// adjacent routers remain usable on other paths — exactly the "less
// aggressive countermeasure" the paper selects.
package routing

import (
	"container/heap"
	"time"

	"routerwatch/internal/packet"
	"routerwatch/internal/topology"
)

// Exclusions is the set of suspected path-segments removed from the routing
// fabric.
type Exclusions struct {
	segments map[topology.SegmentKey]topology.Segment
	links    map[[2]packet.NodeID]bool
	trans    map[[3]packet.NodeID]bool
	// version counts successful Adds; the set only grows, so equal versions
	// imply equal sets. Recompute memoization keys on it.
	version uint64
}

// NewExclusions returns an empty exclusion set.
func NewExclusions() *Exclusions {
	return &Exclusions{
		segments: make(map[topology.SegmentKey]topology.Segment),
		links:    make(map[[2]packet.NodeID]bool),
		trans:    make(map[[3]packet.NodeID]bool),
	}
}

// Add excises a path-segment: a 2-segment removes its directed link; longer
// segments forbid each interior transition. Adding a segment of length < 2
// is a no-op. It reports whether the segment was new.
func (e *Exclusions) Add(seg topology.Segment) bool {
	if len(seg) < 2 {
		return false
	}
	key := topology.Key(seg)
	if _, ok := e.segments[key]; ok {
		return false
	}
	e.segments[key] = append(topology.Segment(nil), seg...)
	e.version++
	if len(seg) == 2 {
		e.links[[2]packet.NodeID{seg[0], seg[1]}] = true
		return true
	}
	for i := 0; i+2 < len(seg); i++ {
		e.trans[[3]packet.NodeID{seg[i], seg[i+1], seg[i+2]}] = true
	}
	return true
}

// Has reports whether the exact segment was excluded.
func (e *Exclusions) Has(seg topology.Segment) bool {
	_, ok := e.segments[topology.Key(seg)]
	return ok
}

// Segments returns all excluded segments.
func (e *Exclusions) Segments() []topology.Segment {
	ss := make(topology.SegmentSet)
	for _, seg := range e.segments {
		ss.Add(seg)
	}
	return ss.Slice()
}

// Len returns the number of excluded segments.
func (e *Exclusions) Len() int { return len(e.segments) }

// Version returns a counter incremented on every successful Add. Because the
// set is grow-only, two observations with equal versions saw identical sets.
func (e *Exclusions) Version() uint64 { return e.version }

// LinkExcluded reports whether the directed link u→v is excised.
func (e *Exclusions) LinkExcluded(u, v packet.NodeID) bool {
	return e.links[[2]packet.NodeID{u, v}]
}

// TransitionForbidden reports whether forwarding u→v→w is excised.
func (e *Exclusions) TransitionForbidden(u, v, w packet.NodeID) bool {
	return e.trans[[3]packet.NodeID{u, v, w}]
}

// Table is a computed forwarding table for one router: next hop keyed by
// (inbound neighbor, destination). The inbound dimension implements the
// paper's policy-based routing (§5.3.1): traffic that arrived along the
// prefix of a suspected segment must not continue along its suffix.
type Table struct {
	router packet.NodeID
	// next[from][dst] = next hop, -1 if unreachable.
	next map[packet.NodeID][]packet.NodeID
}

// NextHop returns the next hop for a packet from inbound neighbor from
// (equal to the table's router for locally originated traffic) toward dst.
func (t *Table) NextHop(from, dst packet.NodeID) (packet.NodeID, bool) {
	row, ok := t.next[from]
	if !ok {
		// Unknown inbound neighbor (e.g. mis-delivered traffic): fall back
		// to the locally-originated row, which has no transition
		// constraint.
		row, ok = t.next[t.router]
		if !ok {
			return -1, false
		}
	}
	if int(dst) >= len(row) {
		return -1, false
	}
	nh := row[dst]
	return nh, nh >= 0
}

// ComputeTable builds router r's forwarding table over graph g with the
// given exclusions, by Dijkstra on the line graph from each entry context.
func ComputeTable(g *topology.Graph, r packet.NodeID, excl *Exclusions) *Table {
	t := &Table{router: r, next: make(map[packet.NodeID][]packet.NodeID)}
	contexts := append([]packet.NodeID{r}, g.Neighbors(r)...)
	for _, from := range contexts {
		t.next[from] = computeRow(g, r, from, excl)
	}
	return t
}

// edgeState indexes a directed link for line-graph Dijkstra.
type edgeState struct {
	u, v packet.NodeID
}

type lgItem struct {
	st   edgeState
	dist int64
	// firstHop is the next hop out of the computing router for the path
	// this state lies on; carried through so the row can be filled.
	firstHop packet.NodeID
}

type lgHeap []lgItem

func (h lgHeap) Len() int { return len(h) }
func (h lgHeap) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	if h[i].firstHop != h[j].firstHop {
		return h[i].firstHop < h[j].firstHop
	}
	if h[i].st.u != h[j].st.u {
		return h[i].st.u < h[j].st.u
	}
	return h[i].st.v < h[j].st.v
}
func (h lgHeap) Swap(i, j int)   { h[i], h[j] = h[j], h[i] }
func (h *lgHeap) Push(x any)     { *h = append(*h, x.(lgItem)) }
func (h *lgHeap) Pop() (out any) { old := *h; n := len(old); out = old[n-1]; *h = old[:n-1]; return }

// computeRow computes next hops at router r for traffic entering from
// neighbor from (or originated locally when from == r).
func computeRow(g *topology.Graph, r, from packet.NodeID, excl *Exclusions) []packet.NodeID {
	n := g.NumNodes()
	row := make([]packet.NodeID, n)
	bestDist := make([]int64, n)
	const inf = int64(1) << 62
	for i := range row {
		row[i] = -1
		bestDist[i] = inf
	}

	type seenKey = edgeState
	seen := make(map[seenKey]bool)
	h := &lgHeap{}

	for _, nb := range g.Neighbors(r) {
		if excl.LinkExcluded(r, nb) {
			continue
		}
		if from != r && excl.TransitionForbidden(from, r, nb) {
			continue
		}
		if from != r && nb == from {
			continue // no immediate U-turn back over the arrival link
		}
		link, _ := g.Link(r, nb)
		heap.Push(h, lgItem{st: edgeState{r, nb}, dist: int64(link.Cost), firstHop: nb})
	}

	for h.Len() > 0 {
		it := heap.Pop(h).(lgItem)
		if seen[it.st] {
			continue
		}
		seen[it.st] = true
		v := it.st.v
		if it.dist < bestDist[v] {
			bestDist[v] = it.dist
			row[v] = it.firstHop
		}
		for _, w := range g.Neighbors(v) {
			next := edgeState{v, w}
			if seen[next] {
				continue
			}
			if excl.LinkExcluded(v, w) {
				continue
			}
			if excl.TransitionForbidden(it.st.u, v, w) {
				continue
			}
			link, _ := g.Link(v, w)
			heap.Push(h, lgItem{st: next, dist: it.dist + int64(link.Cost), firstHop: it.firstHop})
		}
	}
	return row
}

// PathFromTables traces the path a packet from src to dst takes under the
// given per-router tables, for tests and experiments. It returns nil if the
// packet would be dropped (no route) and caps at maxHops to catch loops.
func PathFromTables(tables map[packet.NodeID]*Table, src, dst packet.NodeID, maxHops int) topology.Path {
	path := topology.Path{src}
	from := src
	cur := src
	for cur != dst {
		if len(path) > maxHops {
			return nil
		}
		tbl := tables[cur]
		if tbl == nil {
			return nil
		}
		nh, ok := tbl.NextHop(from, dst)
		if !ok {
			return nil
		}
		from = cur
		cur = nh
		path = append(path, cur)
	}
	return path
}

// Timers are the OSPF-style route computation timers the Fatih evaluation
// depends on (§5.3.2): Delay before recomputing after a triggering event,
// Hold between consecutive computations.
type Timers struct {
	Delay time.Duration
	Hold  time.Duration
}

// DefaultTimers returns the Zebra defaults used in the paper: 5 s delay,
// 10 s hold.
func DefaultTimers() Timers {
	return Timers{Delay: 5 * time.Second, Hold: 10 * time.Second}
}
