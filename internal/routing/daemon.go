package routing

import (
	"encoding/binary"
	"sort"
	"time"

	"routerwatch/internal/auth"
	"routerwatch/internal/network"
	"routerwatch/internal/packet"
	"routerwatch/internal/sim"
	"routerwatch/internal/topology"
)

// Control message kinds used by the routing protocol.
const (
	// KindLSA floods link-state advertisements.
	KindLSA = "routing/lsa"
	// KindAlert floods signed path-segment suspicions.
	KindAlert = "routing/alert"
)

// LSA is a link-state advertisement: a router's view of its own adjacency.
type LSA struct {
	Origin    packet.NodeID
	Seq       uint64
	Neighbors []NeighborEntry
}

// NeighborEntry is one adjacency in an LSA.
type NeighborEntry struct {
	ID   packet.NodeID
	Cost int
}

// Alert is a flooded suspicion: the announcer suspects the path-segment.
// Correct routers honor it only if the signature verifies and the announcer
// is a member of the segment (§4.2.2: a faulty router announcing bogus
// suspicions can only break links adjacent to itself, which "adds no
// further disadvantage").
type Alert struct {
	Announcer packet.NodeID
	Seq       uint64
	Segment   topology.Segment
	Sig       auth.Signature
}

// EncodeAlertBody serializes the signed portion of an alert.
func EncodeAlertBody(announcer packet.NodeID, seq uint64, seg topology.Segment) []byte {
	b := make([]byte, 12+4*len(seg))
	binary.BigEndian.PutUint32(b, uint32(announcer))
	binary.BigEndian.PutUint64(b[4:], seq)
	for i, id := range seg {
		binary.BigEndian.PutUint32(b[12+4*i:], uint32(id))
	}
	return b
}

// Daemon is the per-router routing process.
type Daemon struct {
	proto  *Protocol
	router *network.Router
	id     packet.NodeID
	// shard is the router's event-shard hint: purely a scheduling-locality
	// affinity, never consulted for behaviour.
	shard int

	lsdb      map[packet.NodeID]*LSA
	seenAlert map[packet.NodeID]uint64
	excl      *Exclusions
	seq       uint64
	alertSeq  uint64

	timers        Timers
	lastCompute   time.Duration
	computeQueued bool
	everComputed  bool

	table *Table
	// lastSig is the exact signature of the inputs the current table was
	// computed from ((origin, seq) pairs plus exclusion version); sigScratch
	// is its reusable comparison buffer. See prepare.
	lastSig    []uint64
	sigScratch []uint64

	// pending and flushQueued implement bundled flooding (Options.BundleFlood):
	// accepted LSAs collect here until the flood-hold flush.
	pending     []*LSA
	flushQueued bool

	// onRecompute, if set, observes each table installation (tests,
	// experiment timelines).
	onRecompute func(at time.Duration)
}

// Protocol wires a routing daemon onto every router of a network.
type Protocol struct {
	net     *network.Network
	timers  Timers
	opts    Options
	daemons []*Daemon
	// due maps a batch instant to the daemons whose recompute is coalesced
	// into it (Options.BatchCompute).
	due map[time.Duration][]*Daemon
}

// Attach creates and starts a daemon on every router. Initial LSAs flood at
// staggered start times; tables converge after the delay/hold timers. It is
// exactly AttachWith with default options: every event it schedules is
// byte-identical to what this package scheduled before options existed.
func Attach(net *network.Network, timers Timers) *Protocol {
	return AttachWith(net, Options{Timers: timers})
}

// Daemon returns the daemon at router id.
func (p *Protocol) Daemon(id packet.NodeID) *Daemon { return p.daemons[id] }

// Daemons returns all daemons in router-ID order.
func (p *Protocol) Daemons() []*Daemon { return p.daemons }

// ID returns the daemon's router ID.
func (d *Daemon) ID() packet.NodeID { return d.id }

// Exclusions returns the daemon's current excluded segments.
func (d *Daemon) Exclusions() *Exclusions { return d.excl }

// Table returns the most recently installed forwarding table (nil before
// first convergence).
func (d *Daemon) Table() *Table { return d.table }

// OnRecompute registers an observer of table installations.
func (d *Daemon) OnRecompute(fn func(at time.Duration)) { d.onRecompute = fn }

func (d *Daemon) originateLSA() {
	d.seq++
	g := d.proto.net.Graph()
	var nbs []NeighborEntry
	for _, nb := range g.Neighbors(d.id) {
		link, _ := g.Link(d.id, nb)
		nbs = append(nbs, NeighborEntry{ID: nb, Cost: link.Cost})
	}
	lsa := &LSA{Origin: d.id, Seq: d.seq, Neighbors: nbs}
	d.acceptLSA(lsa, -1)
}

// handleLSA processes a flooded LSA arriving from a neighbor.
func (d *Daemon) handleLSA(m *network.ControlMessage) {
	lsa, ok := m.Payload.(*LSA)
	if !ok {
		return
	}
	d.acceptLSA(lsa, m.From)
}

// acceptLSA installs a new LSA and re-floods it. from is the neighbor it
// arrived from, or -1 if originated locally.
func (d *Daemon) acceptLSA(lsa *LSA, from packet.NodeID) {
	if cur := d.lsdb[lsa.Origin]; cur != nil && cur.Seq >= lsa.Seq {
		return
	}
	d.lsdb[lsa.Origin] = lsa
	if d.proto.opts.BundleFlood {
		d.enqueueFlood(lsa)
	} else {
		d.flood(KindLSA, lsa, from)
	}
	d.scheduleRecompute()
}

// handleAlert processes a flooded suspicion.
func (d *Daemon) handleAlert(m *network.ControlMessage) {
	alert, ok := m.Payload.(*Alert)
	if !ok {
		return
	}
	d.acceptAlert(alert, m.From)
}

func (d *Daemon) acceptAlert(alert *Alert, from packet.NodeID) {
	if d.seenAlert[alert.Announcer] >= alert.Seq {
		return
	}
	// Verify the announcer signed this exact suspicion.
	body := EncodeAlertBody(alert.Announcer, alert.Seq, alert.Segment)
	if !d.proto.net.Auth().Verify(body, alert.Sig) || alert.Sig.Signer != alert.Announcer {
		return
	}
	// Only segments containing the announcer are honored.
	if !alert.Segment.Contains(alert.Announcer) {
		return
	}
	d.seenAlert[alert.Announcer] = alert.Seq
	d.flood(KindAlert, alert, from)
	if d.excl.Add(alert.Segment) {
		d.scheduleRecompute()
	}
}

// AnnounceSuspicion floods a signed suspicion of the path-segment from this
// router (detectors call this; §2.4.3 response). The announcement is also
// applied locally.
func (d *Daemon) AnnounceSuspicion(seg topology.Segment) {
	d.alertSeq++
	body := EncodeAlertBody(d.id, d.alertSeq, seg)
	alert := &Alert{
		Announcer: d.id,
		Seq:       d.alertSeq,
		Segment:   append(topology.Segment(nil), seg...),
		Sig:       d.proto.net.Auth().Sign(d.id, body),
	}
	d.acceptAlert(alert, -1)
}

// flood relays a message to all neighbors except the one it came from
// (Perlman-style robust flooding over direct links; a protocol-faulty
// neighbor can refuse to relay, but with the good-path assumption every
// correct router is still reached).
func (d *Daemon) flood(kind string, payload any, except packet.NodeID) {
	for _, nb := range d.proto.net.Graph().Neighbors(d.id) {
		if nb == except {
			continue
		}
		d.proto.net.SendControlDirect(d.id, nb, kind, payload, auth.Signature{})
	}
}

// scheduleRecompute applies the OSPF delay/hold timers: compute Delay after
// the trigger, but never within Hold of the previous computation. Under
// Options.BatchCompute, same-instant recomputes across daemons coalesce into
// one batch event (see Protocol.runBatch).
func (d *Daemon) scheduleRecompute() {
	if d.computeQueued {
		return
	}
	d.computeQueued = true
	p := d.proto
	sched := p.net.Scheduler()
	at := sched.Now() + d.timers.Delay
	if earliest := d.lastCompute + d.timers.Hold; d.everComputed && at < earliest {
		at = earliest
	}
	if p.opts.BatchCompute {
		if _, ok := p.due[at]; !ok {
			due := at
			sched.AtShard(d.shard, due, func() { p.runBatch(due) })
		}
		p.due[at] = append(p.due[at], d)
		return
	}
	sched.AtShard(d.shard, at, d.recompute)
}

// recompute rebuilds the graph from the LSDB, applies exclusions, computes
// the table, and installs it as the router's forwarder.
func (d *Daemon) recompute() {
	d.prepare()
	d.install(d.proto.net.Scheduler().Now())
}

// prepare computes (or, when nothing recompute reads has changed, reuses)
// the daemon's table. It touches only daemon-private state plus read-only
// lookups on the immutable ground-truth graph, so a batch of prepares over
// distinct daemons may run concurrently (Protocol.runBatch).
//
// The memoization is exact, not a hash: lastSig records every input the
// computation reads — the (origin, seq) pairs of the LSDB (an (origin, seq)
// pair fully determines an LSA's content: origination builds one LSA object
// per seq and floods that same object) and the grow-only exclusion-set
// version. Equal signatures therefore imply an identical result, and a
// memo hit is observably identical to recomputing.
func (d *Daemon) prepare() {
	sig := d.inputSig(d.sigScratch[:0])
	d.sigScratch = sig
	if d.table != nil && uint64sEqual(sig, d.lastSig) {
		return
	}
	d.lastSig = append(d.lastSig[:0], sig...)
	g := d.graphFromLSDB()
	d.table = ComputeTable(g, d.id, d.excl)
}

// install publishes the prepared table as the router's forwarder and fires
// the recompute observer. at is the simulated instant of the installation.
func (d *Daemon) install(at time.Duration) {
	d.computeQueued = false
	d.lastCompute = at
	d.everComputed = true
	tbl := d.table
	self := d.id
	d.router.SetForwarder(func(p *packet.Packet, from packet.NodeID) (packet.NodeID, bool) {
		if from == self {
			return tbl.NextHop(self, p.Dst)
		}
		return tbl.NextHop(from, p.Dst)
	})
	if d.onRecompute != nil {
		d.onRecompute(at)
	}
}

// inputSig appends the exact recompute inputs to buf: (origin, seq) pairs in
// origin order, then the exclusion version. Iteration is by node index, not
// map order, so the signature is deterministic.
func (d *Daemon) inputSig(buf []uint64) []uint64 {
	n := d.proto.net.Graph().NumNodes()
	for id := 0; id < n; id++ {
		if lsa := d.lsdb[packet.NodeID(id)]; lsa != nil {
			buf = append(buf, uint64(id), lsa.Seq)
		}
	}
	return append(buf, d.excl.Version())
}

func uint64sEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// graphFromLSDB reconstructs the topology as advertised. A link u→v is
// installed iff u advertises v (LSAs are trusted here; securing the control
// plane is §1.1.1's problem, explicitly out of scope for the detectors).
// Physical attributes are copied from the simulator's ground-truth graph.
func (d *Daemon) graphFromLSDB() *topology.Graph {
	truth := d.proto.net.Graph()
	g := topology.NewGraph()
	for _, id := range truth.Nodes() {
		g.AddNode(truth.Name(id))
	}
	origins := make([]packet.NodeID, 0, len(d.lsdb))
	for o := range d.lsdb {
		origins = append(origins, o)
	}
	sort.Slice(origins, func(i, j int) bool { return origins[i] < origins[j] })
	for _, o := range origins {
		for _, nb := range d.lsdb[o].Neighbors {
			if l, ok := truth.Link(o, nb.ID); ok {
				l.Cost = nb.Cost
				g.AddLink(l)
			}
		}
	}
	return g
}

// Converged reports whether every daemon has computed at least one table
// and no recomputation is pending.
func (p *Protocol) Converged() bool {
	for _, d := range p.daemons {
		if d.table == nil || d.computeQueued {
			return false
		}
	}
	return true
}

// RunUntilConverged advances the simulation until all daemons converge or
// the deadline passes; it reports success.
func (p *Protocol) RunUntilConverged(deadline time.Duration) bool {
	sched := p.net.Scheduler()
	for sched.Now() < deadline {
		if p.Converged() {
			return true
		}
		if !stepOne(sched) {
			break
		}
	}
	return p.Converged()
}

func stepOne(s *sim.Scheduler) bool { return s.Step() }
