package routerwatch

import (
	"testing"
	"time"

	"routerwatch/internal/detector"
	"routerwatch/internal/detector/pik2"
)

// TestFacadeQuickstart exercises the public surface end to end: the
// README's minimal example must actually detect a compromised router.
func TestFacadeQuickstart(t *testing.T) {
	g := Line(5)
	net := NewNetwork(g, NetworkOptions{Seed: 1})
	log := NewLog()
	AttachPiK2(net, pik2.Options{
		K: 1, Round: 500 * time.Millisecond, Timeout: 100 * time.Millisecond,
		LossThreshold: 2, FabricationThreshold: 2,
		Sink: detector.LogSink(log),
	})
	net.Router(2).SetBehavior(DropAll())
	for i := 0; i < 300; i++ {
		i := i
		net.Scheduler().At(time.Duration(i)*time.Millisecond+time.Microsecond, func() {
			net.Inject(0, &Packet{Dst: 4, Size: 500, Flow: 1, Seq: uint32(i)})
		})
	}
	net.Run(3 * time.Second)

	if log.Len() == 0 {
		t.Fatal("facade quickstart did not detect the compromised router")
	}
	implicated := false
	for _, seg := range log.Segments() {
		if seg.Contains(2) {
			implicated = true
		}
	}
	if !implicated {
		t.Fatalf("router 2 not implicated: %v", log.Segments())
	}
}

func TestFacadeTopologies(t *testing.T) {
	if Abilene().NumNodes() != 11 {
		t.Fatal("Abilene facade broken")
	}
	if g := NewGraph(); g.NumNodes() != 0 {
		t.Fatal("NewGraph facade broken")
	}
	if DefaultRound != 5*time.Second {
		t.Fatal("DefaultRound changed")
	}
}
