module routerwatch

go 1.22
