// Package routerwatch is a library for detecting compromised routers by
// their packet-forwarding behaviour, reproducing Mızrak, Marzullo & Savage's
// work ("Brief Announcement: Detecting Malicious Routers", PODC 2004, and
// the dissertation expanding it).
//
// The library provides:
//
//   - A deterministic network simulator (routers, links, output queues,
//     adversarial behaviours) as the substrate.
//   - Protocol Π2 — traffic validation per path-segment nodes: strong
//     completeness and accuracy with precision 2.
//   - Protocol Πk+2 — traffic validation per path-segment ends: the
//     practical protocol, precision k+2, deployed by the Fatih system.
//   - Protocol χ — per-interface queue replay that infers congestive losses
//     exactly and attributes the rest to malice via calibrated statistical
//     tests (drop-tail and RED).
//   - A link-state routing substrate whose response mechanism excises
//     suspected path-segments from the forwarding fabric.
//   - Baseline protocols (WATCHERS, static threshold, traffic models,
//     PERLMAN, HERZBERG, SecTrace) and the full experiment suite
//     regenerating the paper's figures.
//
// The quickstart in examples/quickstart shows the core loop: build a
// topology, deploy a detector, compromise a router, observe the suspicion
// and the rerouted fabric.
package routerwatch

import (
	"time"

	"routerwatch/internal/attack"
	"routerwatch/internal/detector"
	"routerwatch/internal/detector/chi"
	"routerwatch/internal/detector/pi2"
	"routerwatch/internal/detector/pik2"
	"routerwatch/internal/fatih"
	"routerwatch/internal/network"
	"routerwatch/internal/packet"
	"routerwatch/internal/protocol"
	_ "routerwatch/internal/protocol/catalog"
	"routerwatch/internal/routing"
	"routerwatch/internal/topology"
)

// Core re-exported types. These aliases form the stable public surface;
// the internal packages carry the implementations and their documentation.
type (
	// NodeID identifies a router.
	NodeID = packet.NodeID
	// Packet is a simulated packet.
	Packet = packet.Packet
	// Graph is a network topology.
	Graph = topology.Graph
	// Path is a sequence of adjacent routers.
	Path = topology.Path
	// Segment is a path-segment, the unit of suspicion.
	Segment = topology.Segment
	// Network is the simulator.
	Network = network.Network
	// NetworkOptions configures the simulator.
	NetworkOptions = network.Options
	// Suspicion is a failure detector's output.
	Suspicion = detector.Suspicion
	// SuspicionLog collects suspicions.
	SuspicionLog = detector.Log
	// Dropper is the packet-dropping adversary.
	Dropper = attack.Dropper
	// Scenario is a declarative experiment spec (topology, protocol +
	// options, attack, traffic, seed) executed by RunScenario.
	Scenario = protocol.Spec
	// ScenarioResult is a completed scenario run.
	ScenarioResult = protocol.Result
	// ProtocolInstance is a running protocol deployment as seen by the
	// unified runtime (name, round, suspicion log, native engine).
	ProtocolInstance = protocol.Instance
)

// NewGraph returns an empty topology.
func NewGraph() *Graph { return topology.NewGraph() }

// Abilene returns the 11-PoP Abilene backbone of the Fatih experiments.
func Abilene() *Graph { return topology.Abilene() }

// Line returns a linear topology of n routers.
func Line(n int) *Graph { return topology.Line(n) }

// NewNetwork builds a simulator over a topology.
func NewNetwork(g *Graph, opts NetworkOptions) *Network { return network.New(g, opts) }

// NewLog returns an empty suspicion log.
func NewLog() *SuspicionLog { return detector.NewLog() }

// Protocols lists the registered detection protocols, sorted by name.
func Protocols() []string { return protocol.Names() }

// AttachProtocol deploys a registered protocol by name on a simulated
// network; opts is the protocol's native options value (nil = defaults).
func AttachProtocol(net *Network, name string, opts any) (ProtocolInstance, error) {
	hooks, _ := protocol.LogHooks()
	return protocol.Attach(protocol.NewSimEnv(net), name, opts, hooks)
}

// RunScenario executes a declarative scenario through the protocol
// registry — the library-level equivalent of `mrsim -scenario`.
func RunScenario(spec *Scenario, opts protocol.RunOptions) (*ScenarioResult, error) {
	return protocol.Run(spec, opts)
}

// AttachPiK2 deploys Protocol Πk+2 (per path-segment ends, precision k+2).
func AttachPiK2(net *Network, opts pik2.Options) *pik2.Protocol {
	return protocol.MustAttach(protocol.NewSimEnv(net), "pik2", opts, protocol.Hooks{}).Engine().(*pik2.Protocol)
}

// AttachPi2 deploys Protocol Π2 (per path-segment nodes, precision 2).
func AttachPi2(net *Network, opts pi2.Options) *pi2.Protocol {
	return protocol.MustAttach(protocol.NewSimEnv(net), "pi2", opts, protocol.Hooks{}).Engine().(*pi2.Protocol)
}

// AttachChi deploys Protocol χ (per-interface queue replay).
func AttachChi(net *Network, opts chi.Options) *chi.Protocol {
	return protocol.MustAttach(protocol.NewSimEnv(net), "chi", opts, protocol.Hooks{}).Engine().(*chi.Protocol)
}

// AttachRouting deploys the link-state routing substrate with alert-driven
// path-segment exclusion.
func AttachRouting(net *Network, timers routing.Timers) *routing.Protocol {
	return routing.Attach(net, timers)
}

// DeployFatih assembles the full Fatih system (detector + routing response
// + clock sync) on a network.
func DeployFatih(net *Network, opts fatih.Options) *fatih.System {
	return protocol.MustAttach(protocol.NewSimEnv(net), "fatih", opts, protocol.Hooks{}).Engine().(*fatih.System)
}

// RunAbileneScenario executes the Fig 5.7 Fatih experiment.
func RunAbileneScenario(opts fatih.ScenarioOptions) *fatih.ScenarioResult {
	return fatih.RunAbilene(opts)
}

// DropAll returns a behaviour dropping every packet — the bluntest
// compromised-router model.
func DropAll() *Dropper { return &attack.Dropper{Select: attack.All, P: 1} }

// DefaultRound is the Fatih prototype's validation interval τ.
const DefaultRound = 5 * time.Second
