package routerwatch

// The benchmark harness: one testing.B target per table and figure of the
// paper's evaluation (see DESIGN.md's per-experiment index and
// EXPERIMENTS.md for paper-vs-measured). Each benchmark runs the
// corresponding experiment end to end and reports the headline quantity as
// a custom metric, so
//
//	go test -bench=. -benchmem
//
// regenerates the entire evaluation.

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"routerwatch/internal/auth"
	"routerwatch/internal/capture"
	"routerwatch/internal/experiments"
	"routerwatch/internal/packet"
	"routerwatch/internal/protocol"
	_ "routerwatch/internal/protocol/catalog"
	"routerwatch/internal/summary"
	"routerwatch/internal/topology"
)

// BenchmarkFig5_2 regenerates the Π2 monitoring-state figure (max/avg/
// median |Pr| vs k on the Sprintlink- and EBONE-scale topologies).
func BenchmarkFig5_2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs := experiments.Fig5_2(8, 0)
		sprint := figs[0]
		b.ReportMetric(sprint.Stats[1].Mean, "avgPr(k=2)")
		b.ReportMetric(float64(sprint.WatchersMean), "watchersCounters")
	}
}

// BenchmarkFig5_4 regenerates the Πk+2 monitoring-state figure.
func BenchmarkFig5_4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs := experiments.Fig5_4(8, 0)
		sprint := figs[0]
		b.ReportMetric(sprint.Stats[1].Mean, "avgPr(k=2)")
	}
}

// BenchmarkFig5_7 regenerates the Fatih timeline (Abilene, Kansas City
// compromise): detection latency, reroute latency, RTT shift.
func BenchmarkFig5_7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _ := experiments.Fig5_7(int64(5 + i))
		b.ReportMetric((res.FirstDetectionAt - res.AttackAt).Seconds(), "detect-s")
		b.ReportMetric((res.RerouteAt - res.FirstDetectionAt).Seconds(), "reroute-s")
		b.ReportMetric(float64(res.PreAttackRTT.Milliseconds()), "rttBefore-ms")
		b.ReportMetric(float64(res.PostRerouteRTT.Milliseconds()), "rttAfter-ms")
	}
}

// BenchmarkFig6_2 regenerates the single-loss confidence curve.
func BenchmarkFig6_2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig6_2(50_000, 1000, 0, 1500)
	}
}

// BenchmarkFig6_3 regenerates the qerror distribution study.
func BenchmarkFig6_3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, _ := experiments.Fig6_3(int64(77 + i))
		b.ReportMetric(rep.StdDev, "qerror-sd-bytes")
		b.ReportMetric(rep.Skewness, "skew")
	}
}

func reportChi(b *testing.B, res *experiments.ChiResult) {
	b.Helper()
	detected := 0.0
	if res.Detected() {
		detected = 1
	}
	b.ReportMetric(detected, "detected")
	b.ReportMetric(float64(res.AttackerDropped), "attackDrops")
	if res.FirstDetectionAt > 0 {
		b.ReportMetric(res.FirstDetectionAt.Seconds(), "firstDetect-s")
	}
}

// BenchmarkFig6_5 regenerates the drop-tail no-attack run (must stay
// silent despite congestion).
func BenchmarkFig6_5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig6_5(int64(3001 + i))
		reportChi(b, res)
	}
}

// BenchmarkFig6_6 regenerates attack 1: drop 20% of the selected flows.
func BenchmarkFig6_6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportChi(b, experiments.Fig6_6(int64(3101+i)))
	}
}

// BenchmarkFig6_7 regenerates attack 2: drop when the queue is 90% full.
func BenchmarkFig6_7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportChi(b, experiments.Fig6_7(int64(3201+i)))
	}
}

// BenchmarkFig6_8 regenerates attack 3: drop when the queue is 95% full.
func BenchmarkFig6_8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportChi(b, experiments.Fig6_8(int64(3301+i)))
	}
}

// BenchmarkFig6_9 regenerates attack 4: the SYN drop.
func BenchmarkFig6_9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportChi(b, experiments.Fig6_9(int64(3401+i)))
	}
}

// BenchmarkChiVsThreshold regenerates the §6.4.3 comparison.
func BenchmarkChiVsThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunChiVsThreshold(int64(3501 + i))
		b.ReportMetric(float64(res.CongestionCeiling), "congestionCeiling")
		detected := 0.0
		if res.Chi.Detected() {
			detected = 1
		}
		b.ReportMetric(detected, "chiDetected")
	}
}

// BenchmarkFig6_11 regenerates the RED no-attack run.
func BenchmarkFig6_11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportChi(b, experiments.Fig6_11(int64(3601+i)))
	}
}

// BenchmarkFig6_12 regenerates RED attack 1 (mask above avg 45 kB).
func BenchmarkFig6_12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportChi(b, experiments.Fig6_12(int64(3701+i)))
	}
}

// BenchmarkFig6_13 regenerates RED attack 2 (mask above avg 54 kB).
func BenchmarkFig6_13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportChi(b, experiments.Fig6_13(int64(3801+i)))
	}
}

// BenchmarkFig6_14 regenerates RED attack 3 (10% above avg 45 kB).
func BenchmarkFig6_14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportChi(b, experiments.Fig6_14(int64(3901+i)))
	}
}

// BenchmarkFig6_15 regenerates RED attack 4 (5% above avg 45 kB).
func BenchmarkFig6_15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportChi(b, experiments.Fig6_15(int64(4001+i)))
	}
}

// BenchmarkFig6_16 regenerates RED attack 5 (SYN drop).
func BenchmarkFig6_16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reportChi(b, experiments.Fig6_16(int64(4101+i)))
	}
}

// BenchmarkArchitectures regenerates the §2.3/§2.4 validation-architecture
// design-space matrix.
func BenchmarkArchitectures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunArchitectures(int64(4301 + i))
		detected := 0
		for _, row := range res.Rows {
			if row.Detected {
				detected++
			}
		}
		b.ReportMetric(float64(detected), "architecturesDetecting")
	}
}

// BenchmarkOverhead regenerates the §2.4.1 summary-size and Πk+2
// exchange-bandwidth comparisons.
func BenchmarkOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.SummarySizeTable([]int{100, 1000, 10000}, 12)
		_ = experiments.ExchangeBandwidthTable(int64(4401 + i))
	}
}

// BenchmarkStateSize regenerates the §5.1.1/§7.2 state comparison.
func BenchmarkStateSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.StateSizeTable(topology.SprintlinkSpec(), 2)
		_ = experiments.StateSizeTable(topology.EBONESpec(), 2)
	}
}

// BenchmarkWatchersFlaw regenerates the §3.1 consorting-routers table.
func BenchmarkWatchersFlaw(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.WatchersFlawTable(int64(4201 + i))
	}
}

// BenchmarkPerlmanFlaw regenerates the §3.7/§3.3 analysis.
func BenchmarkPerlmanFlaw(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.PerlmanFlawTable()
	}
}

// BenchmarkFingerprints measures §7.1's per-packet cost of summary
// generation: keyed fingerprint computation throughput.
func BenchmarkFingerprints(b *testing.B) {
	h := packet.NewHasher(1, 2)
	p := &packet.Packet{ID: 9, Src: 1, Dst: 2, Flow: 77, Seq: 3, Size: 1500, Payload: 42}
	b.SetBytes(int64(p.Size))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.ID = uint64(i)
		_ = h.Fingerprint(p)
	}
}

// BenchmarkSummaryUpdate measures the §7.1 per-packet cost of maintaining
// a conservation-of-content summary (fingerprint + multiset insert).
func BenchmarkSummaryUpdate(b *testing.B) {
	h := packet.NewHasher(1, 2)
	p := &packet.Packet{ID: 9, Src: 1, Dst: 2, Flow: 77, Seq: 3, Size: 1500, Payload: 42}
	s := summary.NewFPSet()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.ID = uint64(i)
		s.Add(h.Fingerprint(p))
	}
}

// BenchmarkSetReconciliation measures Appendix A's bandwidth-optimal
// summary comparison: recovering an 8-element difference between
// 1000-element fingerprint sets.
func BenchmarkSetReconciliation(b *testing.B) {
	shared := make([]uint64, 1000)
	for i := range shared {
		shared[i] = uint64(i)*2654435761 + 7
	}
	sa := append(append([]uint64(nil), shared...), 11, 22, 33, 44)
	sb := append(append([]uint64(nil), shared...), 55, 66, 77, 88)
	points := summary.ReconcilePoints(10)
	ea := summary.EvaluateCharPoly(sa, points)
	eb := summary.EvaluateCharPoly(sb, points)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := summary.Reconcile(ea, eb, points, len(sa), len(sb)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSigning measures the control-plane signature cost (§7.1).
func BenchmarkSigning(b *testing.B) {
	a := auth.NewAuthority(1)
	msg := make([]byte, 512)
	b.SetBytes(int64(len(msg)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.Sign(3, msg)
	}
}

// BenchmarkFigureSuite measures the parallel experiment runner end to end:
// a fixed subset of the evaluation fanned out over 1 worker (the serial
// baseline) and over GOMAXPROCS workers. The reported speedup metric is
// cumulative trial time over wall time; on a multi-core host it approaches
// the worker count, and stdout-equivalent output is asserted by the
// determinism suite, not here.
func BenchmarkFigureSuite(b *testing.B) {
	subset := []string{"5.2", "5.4", "6.2", "state", "perlman", "watchers"}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, rep := experiments.RunSuite(experiments.SuiteOptions{
					Seed: 1, MaxK: 6, Workers: workers,
				}, subset)
				b.ReportMetric(rep.Speedup(), "speedup")
				b.ReportMetric(rep.Utilization(), "utilization")
			}
		})
	}
}

// BenchmarkFatihTrials measures multi-seed trial fan-out: N independent
// Abilene compromise scenarios per iteration, serial vs full-width.
func BenchmarkFatihTrials(b *testing.B) {
	const trials = 4
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := experiments.FatihTrials(int64(9000+i), trials, workers, nil)
				b.ReportMetric(float64(res.Detected)/trials, "detectRate")
				b.ReportMetric(res.Report.Speedup(), "speedup")
			}
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed: packet events
// per wall second on a saturated line (sanity metric for the harness
// itself, not a paper figure).
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := topology.Line(4)
		net := NewNetwork(g, NetworkOptions{Seed: int64(i)})
		for j := 0; j < 5000; j++ {
			j := j
			net.Scheduler().At(time.Duration(j)*100*time.Microsecond, func() {
				net.Inject(0, &Packet{Dst: 3, Size: 500, Seq: uint32(j)})
			})
		}
		net.Run(5 * time.Second)
	}
}

// BenchmarkTraceReplay measures the capture subsystem's replay path: each
// iteration opens the committed line5drop fixture (4 simulated seconds,
// ~11k recorded packet events across 5 routers), attaches Πk+2, and
// replays to the recorded horizon — decode, merge, dispatch and detection
// included.
func BenchmarkTraceReplay(b *testing.B) {
	d, err := protocol.Lookup("pik2")
	if err != nil {
		b.Fatal(err)
	}
	opts, err := d.ParseOptions(protocol.Params{
		"k": "1", "round": "1s", "timeout": "250ms",
		"loss-threshold": "2", "fabrication-threshold": "2",
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env, err := capture.OpenTrace("internal/capture/testdata/line5drop", capture.TraceOptions{})
		if err != nil {
			b.Fatal(err)
		}
		hooks, logbook := protocol.LogHooks()
		if _, err := protocol.Attach(env, "pik2", opts, hooks); err != nil {
			b.Fatal(err)
		}
		env.Run(0)
		if err := env.Err(); err != nil {
			b.Fatal(err)
		}
		if logbook.Len() == 0 {
			b.Fatal("replay produced no suspicions")
		}
		env.Close()
	}
}

// benchShardedSpec is the sharded-core benchmark scenario: Πk+2 over a
// generated 200-router hierarchical ISP topology, link-state routing with
// the scale options on, and a 100-pair random traffic mesh — the
// internet-scale shape the per-region shard layout exists for.
func benchShardedSpec(shards int) *protocol.Spec {
	return &protocol.Spec{
		Name:     "bench-sharded",
		Protocol: "pik2",
		Options: protocol.Params{
			"k": "1", "round": "1s", "timeout": "250ms",
			"loss-threshold": "2", "fabrication-threshold": "2",
		},
		Seed:     1,
		Shards:   shards,
		Duration: protocol.Duration(8 * time.Second),
		Topology: protocol.TopologySpec{Kind: "isp", N: 200, Pops: 8, Seed: 7},
		Routing: &protocol.RoutingSpec{
			Delay: protocol.Duration(time.Second), Hold: protocol.Duration(2 * time.Second),
			Converge:       protocol.Duration(2 * time.Minute),
			StaggerRegions: true, BundleFlood: true, BatchCompute: true,
		},
		Traffic: []protocol.TrafficSpec{{
			Kind: "mesh", Pairs: 100, Count: 200,
			Interval: protocol.Duration(5 * time.Millisecond),
			Offset:   protocol.Duration(time.Microsecond),
			Size:     500, Flow: 1,
		}},
	}
}

// BenchmarkShardedSim measures the sharded event core end to end on the
// generated ISP topology, single-heap vs per-region shards — same scenario,
// same verdicts (TestShardCountInvariance pins that), different layout.
func BenchmarkShardedSim(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := protocol.Run(benchShardedSpec(shards), protocol.RunOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if res.Net.Now() == 0 {
					b.Fatal("benchmark run did not advance the clock")
				}
			}
		})
	}
}
