// Command benchcmp diffs two `go test -json` benchmark logs (the files
// `make bench` writes) and prints per-benchmark ns/op and allocs/op deltas:
//
//	benchcmp BENCH_baseline.json BENCH_current.json
//
// Benchmarks present in only one log are reported with "-" on the missing
// side instead of failing, so partial runs (a narrowed ./pkg/... target, a
// renamed benchmark) still compare gracefully. Exit status: 0 on success,
// 2 when a log cannot be read or holds no benchmark results.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// event is the subset of test2json's record benchcmp needs.
type event struct {
	Action  string
	Package string
	Output  string
}

// result is one benchmark's measurements.
type result struct {
	nsPerOp     float64
	allocsPerOp int64
	hasAllocs   bool
}

// resultRx matches an assembled benchmark result line:
// "BenchmarkX[-P] <tab> N <tab> T ns/op [<tab> B B/op <tab> A allocs/op]".
var resultRx = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:.*?\s([0-9]+) allocs/op)?`)

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintf(os.Stderr, "usage: benchcmp OLD.json NEW.json\n")
		os.Exit(2)
	}
	oldRes := parse(os.Args[1])
	newRes := parse(os.Args[2])

	keys := make([]string, 0, len(oldRes)+len(newRes))
	seen := make(map[string]bool)
	for k := range oldRes {
		keys = append(keys, k)
		seen[k] = true
	}
	for k := range newRes {
		if !seen[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\told ns/op\tnew ns/op\tdelta\told allocs/op\tnew allocs/op\tdelta")
	for _, k := range keys {
		o, haveOld := oldRes[k]
		n, haveNew := newRes[k]
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\t%s\n", k,
			ns(o, haveOld), ns(n, haveNew), delta(haveOld && haveNew, o.nsPerOp, n.nsPerOp),
			allocs(o, haveOld), allocs(n, haveNew),
			delta(haveOld && haveNew && o.hasAllocs && n.hasAllocs,
				float64(o.allocsPerOp), float64(n.allocsPerOp)))
	}
	w.Flush()
}

func ns(r result, have bool) string {
	if !have {
		return "-"
	}
	return strconv.FormatFloat(r.nsPerOp, 'f', -1, 64)
}

func allocs(r result, have bool) string {
	if !have || !r.hasAllocs {
		return "-"
	}
	return strconv.FormatInt(r.allocsPerOp, 10)
}

func delta(comparable bool, old, new float64) string {
	if !comparable || old == 0 {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", (new-old)/old*100)
}

// parse reassembles a test2json log's Output stream per package and
// extracts every benchmark result line.
func parse(path string) map[string]result {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(2)
	}
	defer f.Close()

	// test2json splits one result line across several Output events
	// ("BenchmarkX \t" then "  24301\t 50589 ns/op...\n"), so concatenate
	// per package before scanning for assembled lines.
	byPkg := make(map[string]*strings.Builder)
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate non-JSON lines (truncated logs, build noise)
		}
		if ev.Action != "output" || ev.Output == "" {
			continue
		}
		b := byPkg[ev.Package]
		if b == nil {
			b = &strings.Builder{}
			byPkg[ev.Package] = b
			order = append(order, ev.Package)
		}
		b.WriteString(ev.Output)
	}

	out := make(map[string]result)
	for _, pkg := range order {
		for _, line := range strings.Split(byPkg[pkg].String(), "\n") {
			m := resultRx.FindStringSubmatch(strings.TrimSpace(line))
			if m == nil {
				continue
			}
			nsOp, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				continue
			}
			r := result{nsPerOp: nsOp}
			if m[3] != "" {
				if a, err := strconv.ParseInt(m[3], 10, 64); err == nil {
					r.allocsPerOp = a
					r.hasAllocs = true
				}
			}
			out[pkg+"."+m[1]] = r
		}
	}
	if len(out) == 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: no benchmark results in %s\n", path)
		os.Exit(2)
	}
	return out
}
