// Command benchcmp diffs two `go test -json` benchmark logs (the files
// `make bench` writes) and prints per-benchmark ns/op and allocs/op deltas:
//
//	benchcmp BENCH_baseline.json BENCH_current.json
//	benchcmp -threshold 15 BENCH_baseline.json BENCH_current.json
//	benchcmp -threshold 40 -alloc-threshold 5 OLD.json NEW.json
//
// With -threshold P, any benchmark whose ns/op or allocs/op grew by more
// than P percent is a regression: each one is listed on stderr and the
// exit status is 1 — the CI gate. Without it the comparison is purely
// informational. -alloc-threshold overrides the percentage applied to
// allocs/op: wall-clock noise on a shared CI container is large (a
// back-to-back double run of the full suite swings ns/op by up to ~34%
// on sub-nanosecond micro-benches), but allocation counts are
// near-deterministic (≤1% swing), so the allocs gate can be far tighter
// than the ns gate.
//
// Benchmarks present in only one log are reported with "-" on the missing
// side instead of failing, so partial runs (a narrowed ./pkg/... target, a
// renamed benchmark) still compare gracefully. Exit status: 0 on success,
// 1 when -threshold finds a regression, 2 when a log cannot be read or
// holds no benchmark results.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
)

// event is the subset of test2json's record benchcmp needs.
type event struct {
	Action  string
	Package string
	Output  string
}

// result is one benchmark's measurements.
type result struct {
	nsPerOp     float64
	allocsPerOp int64
	hasAllocs   bool
}

// resultRx matches an assembled benchmark result line:
// "BenchmarkX[-P] <tab> N <tab> T ns/op [<tab> B B/op <tab> A allocs/op]".
var resultRx = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:.*?\s([0-9]+) allocs/op)?`)

func main() {
	threshold := flag.Float64("threshold", 0,
		"fail (exit 1) when ns/op or allocs/op regresses by more than this percentage (0 = report only)")
	allocThreshold := flag.Float64("alloc-threshold", 0,
		"separate percentage for allocs/op regressions (0 = use -threshold)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchcmp [-threshold pct] OLD.json NEW.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldRes := parse(flag.Arg(0))
	newRes := parse(flag.Arg(1))

	keys := make([]string, 0, len(oldRes)+len(newRes))
	seen := make(map[string]bool)
	for k := range oldRes {
		keys = append(keys, k)
		seen[k] = true
	}
	for k := range newRes {
		if !seen[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	w := tabwriter.NewWriter(os.Stdout, 2, 8, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\told ns/op\tnew ns/op\tdelta\told allocs/op\tnew allocs/op\tdelta")
	for _, k := range keys {
		o, haveOld := oldRes[k]
		n, haveNew := newRes[k]
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\t%s\n", k,
			ns(o, haveOld), ns(n, haveNew), delta(haveOld && haveNew, o.nsPerOp, n.nsPerOp),
			allocs(o, haveOld), allocs(n, haveNew),
			delta(haveOld && haveNew && o.hasAllocs && n.hasAllocs,
				float64(o.allocsPerOp), float64(n.allocsPerOp)))
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(2)
	}

	if *threshold > 0 {
		allocPct := *allocThreshold
		if allocPct <= 0 {
			allocPct = *threshold
		}
		var regressions []string
		for _, k := range keys {
			o, haveOld := oldRes[k]
			n, haveNew := newRes[k]
			if !haveOld || !haveNew {
				continue
			}
			if o.nsPerOp > 0 {
				if pct := (n.nsPerOp - o.nsPerOp) / o.nsPerOp * 100; pct > *threshold {
					regressions = append(regressions,
						fmt.Sprintf("%s: ns/op %+.1f%% (%.0f -> %.0f)", k, pct, o.nsPerOp, n.nsPerOp))
				}
			}
			if o.hasAllocs && n.hasAllocs && o.allocsPerOp > 0 {
				if pct := float64(n.allocsPerOp-o.allocsPerOp) / float64(o.allocsPerOp) * 100; pct > allocPct {
					regressions = append(regressions,
						fmt.Sprintf("%s: allocs/op %+.1f%% (%d -> %d)", k, pct, o.allocsPerOp, n.allocsPerOp))
				}
			}
		}
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "benchcmp: %d regression(s) beyond ns/op %.1f%% / allocs/op %.1f%%:\n",
				len(regressions), *threshold, allocPct)
			for _, r := range regressions {
				fmt.Fprintf(os.Stderr, "  %s\n", r)
			}
			os.Exit(1)
		}
	}
}

func ns(r result, have bool) string {
	if !have {
		return "-"
	}
	return strconv.FormatFloat(r.nsPerOp, 'f', -1, 64)
}

func allocs(r result, have bool) string {
	if !have || !r.hasAllocs {
		return "-"
	}
	return strconv.FormatInt(r.allocsPerOp, 10)
}

func delta(comparable bool, old, new float64) string {
	if !comparable || old == 0 {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", (new-old)/old*100)
}

// parse reassembles a test2json log's Output stream per package and
// extracts every benchmark result line.
func parse(path string) map[string]result {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(2)
	}
	defer f.Close()

	// test2json splits one result line across several Output events
	// ("BenchmarkX \t" then "  24301\t 50589 ns/op...\n"), so concatenate
	// per package before scanning for assembled lines.
	byPkg := make(map[string]*strings.Builder)
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate non-JSON lines (truncated logs, build noise)
		}
		if ev.Action != "output" || ev.Output == "" {
			continue
		}
		b := byPkg[ev.Package]
		if b == nil {
			b = &strings.Builder{}
			byPkg[ev.Package] = b
			order = append(order, ev.Package)
		}
		b.WriteString(ev.Output)
	}

	out := make(map[string]result)
	for _, pkg := range order {
		for _, line := range strings.Split(byPkg[pkg].String(), "\n") {
			m := resultRx.FindStringSubmatch(strings.TrimSpace(line))
			if m == nil {
				continue
			}
			nsOp, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				continue
			}
			r := result{nsPerOp: nsOp}
			if m[3] != "" {
				if a, err := strconv.ParseInt(m[3], 10, 64); err == nil {
					r.allocsPerOp = a
					r.hasAllocs = true
				}
			}
			out[pkg+"."+m[1]] = r
		}
	}
	if len(out) == 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: no benchmark results in %s\n", path)
		os.Exit(2)
	}
	return out
}
