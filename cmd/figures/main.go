// Command figures regenerates every table and figure of the paper's
// evaluation. Without arguments it runs the full suite; with figure names
// (e.g. "5.2 6.7 red") it runs a subset.
//
//	go run ./cmd/figures            # everything (several minutes)
//	go run ./cmd/figures 5.2 5.4    # monitoring-state figures only
//	go run ./cmd/figures 5.7        # the Fatih timeline
//	go run ./cmd/figures 6.7 vs     # masked attack + χ-vs-threshold
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"routerwatch/internal/experiments"
	"routerwatch/internal/topology"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	maxK := flag.Int("maxk", 8, "largest AdjacentFault(k) for Figs 5.2/5.4")
	series := flag.Bool("series", false, "also print full per-round/per-sample series")
	flag.Parse()

	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[strings.ToLower(a)] = true
	}
	sel := func(names ...string) bool {
		if len(want) == 0 {
			return true
		}
		for _, n := range names {
			if want[n] {
				return true
			}
		}
		return false
	}
	out := os.Stdout

	if sel("5.2") {
		for _, f := range experiments.Fig5_2(*maxK) {
			fmt.Fprintln(out, f.Table())
		}
	}
	if sel("5.4") {
		for _, f := range experiments.Fig5_4(*maxK) {
			fmt.Fprintln(out, f.Table())
		}
	}
	if sel("5.7", "fatih") {
		res, tb := experiments.Fig5_7(*seed)
		fmt.Fprintln(out, tb)
		if *series {
			fmt.Fprintln(out, experiments.RTTSeries(res))
		}
	}
	if sel("6.2") {
		fmt.Fprintln(out, experiments.Fig6_2(50_000, 1000, 0, 1500))
	}
	if sel("6.3") {
		_, tb := experiments.Fig6_3(*seed + 100)
		fmt.Fprintln(out, tb)
	}

	chiFigs := []struct {
		names []string
		title string
		run   func(int64) *experiments.ChiResult
	}{
		{[]string{"6.5"}, "Fig 6.5 — no attack (drop-tail)", experiments.Fig6_5},
		{[]string{"6.6"}, "Fig 6.6 — attack 1: drop 20% of the selected flows", experiments.Fig6_6},
		{[]string{"6.7"}, "Fig 6.7 — attack 2: drop when queue ≥90% full", experiments.Fig6_7},
		{[]string{"6.8"}, "Fig 6.8 — attack 3: drop when queue ≥95% full", experiments.Fig6_8},
		{[]string{"6.9"}, "Fig 6.9 — attack 4: SYN drop", experiments.Fig6_9},
		{[]string{"6.11", "red"}, "Fig 6.11 — no attack (RED)", experiments.Fig6_11},
		{[]string{"6.12", "red"}, "Fig 6.12 — RED attack 1: drop above avg 45 kB", experiments.Fig6_12},
		{[]string{"6.13", "red"}, "Fig 6.13 — RED attack 2: drop above avg 54 kB", experiments.Fig6_13},
		{[]string{"6.14", "red"}, "Fig 6.14 — RED attack 3: 10% above avg 45 kB", experiments.Fig6_14},
		{[]string{"6.15", "red"}, "Fig 6.15 — RED attack 4: 5% above avg 45 kB", experiments.Fig6_15},
		{[]string{"6.16", "red"}, "Fig 6.16 — RED attack 5: SYN drop", experiments.Fig6_16},
	}
	for i, cf := range chiFigs {
		if !sel(cf.names...) {
			continue
		}
		res := cf.run(*seed + int64(200+i))
		if *series {
			fmt.Fprintln(out, res.Table(cf.title))
		} else {
			fmt.Fprintf(out, "== %s ==\ndetected=%v suspicions=%d attacker-drops=%d first-detection=%v\n\n",
				cf.title, res.Detected(), len(res.Suspicions), res.AttackerDropped, res.FirstDetectionAt)
		}
	}

	if sel("vs", "6.4.3") {
		fmt.Fprintln(out, experiments.RunChiVsThreshold(*seed+300).Table())
	}
	if sel("state", "7.2") {
		fmt.Fprintln(out, experiments.StateSizeTable(topology.SprintlinkSpec(), 2))
		fmt.Fprintln(out, experiments.StateSizeTable(topology.EBONESpec(), 2))
	}
	if sel("watchers", "3.1") {
		fmt.Fprintln(out, experiments.WatchersFlawTable(*seed+400))
	}
	if sel("perlman", "3.7", "3.3") {
		fmt.Fprintln(out, experiments.PerlmanFlawTable())
	}
	if sel("arch", "2.3", "2.4") {
		fmt.Fprintln(out, experiments.RunArchitectures(*seed+600).Table())
	}
	if sel("overhead", "2.4.1") {
		fmt.Fprintln(out, experiments.SummarySizeTable([]int{100, 1000, 10000, 100000}, 12))
		fmt.Fprintln(out, experiments.ExchangeBandwidthTable(*seed+500))
	}
}
