// Command figures regenerates every table and figure of the paper's
// evaluation. Without arguments it runs the full suite; with figure names
// (e.g. "5.2 6.7 red") it runs a subset.
//
//	go run ./cmd/figures                # everything (several minutes)
//	go run ./cmd/figures 5.2 5.4        # monitoring-state figures only
//	go run ./cmd/figures 5.7            # the Fatih timeline
//	go run ./cmd/figures 6.7 vs         # masked attack + χ-vs-threshold
//	go run ./cmd/figures -parallel 8    # fan figures out over 8 workers
//	go run ./cmd/figures -trials 16 5.7 # 16-seed Fatih latency statistics
//
// Figures fan out over a bounded worker pool (internal/runner; default
// GOMAXPROCS workers, -parallel=1 for the serial escape hatch). Each figure
// builds its own simulator kernels and derives its own seeds, so stdout is
// byte-identical for every -parallel value — only wall-clock time changes.
//
// Observability: -metrics folds every figure's simulator and detector
// counters into one deterministic snapshot (internal/telemetry); -cpuprofile
// and -memprofile write pprof profiles. Event tracing is per-run — use
// `mrsim -protocol fatih -trace` for a scenario timeline; here -trace would
// interleave unrelated figures and is rejected. All instrumentation output
// goes to files or stderr — stdout is unchanged by these flags.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"routerwatch/internal/experiments"
	"routerwatch/internal/runner"
	"routerwatch/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")

	seed := flag.Int64("seed", 1, "simulation seed")
	maxK := flag.Int("maxk", 8, "largest AdjacentFault(k) for Figs 5.2/5.4")
	series := flag.Bool("series", false, "also print full per-round/per-sample series")
	parallel := flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
	trials := flag.Int("trials", 0, "also run N multi-seed Fatih trials (aggregate Fig 5.7 statistics)")
	progress := flag.Bool("progress", false, "report per-figure completions and pool utilization on stderr")
	tf := telemetry.RegisterFlags(flag.CommandLine)
	flag.Parse()

	if tf.Trace != "" {
		log.Fatal("-trace traces a single scenario; use `mrsim -protocol fatih -trace` instead")
	}
	if tf.CPUProfile != "" {
		stop, err := telemetry.StartCPUProfile(tf.CPUProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
	}
	tel := tf.NewSet()

	var onProgress func(runner.Snapshot)
	if *progress {
		onProgress = func(s runner.Snapshot) {
			fmt.Fprintf(os.Stderr, "figures: %d/%d done, wall %.1fs, cumulative %.1fs\n",
				s.Done, s.Total, s.Wall.Seconds(), s.CumTrial.Seconds())
		}
	}

	// -trials runs only the trial sweep when no figure names are given
	// alongside it.
	if *trials > 0 && flag.NArg() == 0 {
		runTrials(*seed, *trials, *parallel, onProgress, *progress)
		finish(tf, tel)
		return
	}

	results, rep := experiments.RunSuite(experiments.SuiteOptions{
		Seed:      *seed,
		MaxK:      *maxK,
		Series:    *series,
		Workers:   *parallel,
		Progress:  onProgress,
		Telemetry: tel,
	}, flag.Args())
	if len(results) == 0 {
		fmt.Fprintf(os.Stderr, "figures: no figure matches %q; known: %s\n",
			strings.Join(flag.Args(), " "), strings.Join(experiments.SuiteNames(), " "))
		os.Exit(2)
	}
	for _, r := range results {
		fmt.Print(r.Text)
	}
	if *progress {
		fmt.Fprintf(os.Stderr,
			"figures: %d figures on %d workers: wall %.1fs, cumulative %.1fs, speedup %.2fx, utilization %.0f%%\n",
			rep.Trials, rep.Workers, rep.Wall.Seconds(), rep.CumTrial.Seconds(),
			rep.Speedup(), 100*rep.Utilization())
	}

	if *trials > 0 {
		runTrials(*seed, *trials, *parallel, onProgress, *progress)
	}
	finish(tf, tel)
}

// finish writes the telemetry outputs, fatally on error.
func finish(tf *telemetry.Flags, tel *telemetry.Set) {
	if err := tf.Finish(tel); err != nil {
		log.Fatal(err)
	}
}

func runTrials(seed int64, n, parallel int, onProgress func(runner.Snapshot), progress bool) {
	res := experiments.FatihTrials(seed, n, parallel, onProgress)
	fmt.Println(res.Table())
	if progress {
		rep := res.Report
		fmt.Fprintf(os.Stderr,
			"trials: %d trials on %d workers: wall %.1fs, cumulative %.1fs, speedup %.2fx, utilization %.0f%%\n",
			rep.Trials, rep.Workers, rep.Wall.Seconds(), rep.CumTrial.Seconds(),
			rep.Speedup(), 100*rep.Utilization())
	}
}
