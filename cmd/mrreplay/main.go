// Command mrreplay attaches a detection protocol to a recorded packet
// trace: the capture-and-replay counterpart of mrsim. Record a run with
// mrsim -record, then feed the detectors the recorded packet stream —
// suspicions come out byte-identical to the originating run, because a
// trace plus an attachment is a pure function of the recorded bytes.
//
//	go run ./cmd/mrsim -protocol pik2 -rate 0.3 -record /tmp/tr
//	go run ./cmd/mrreplay -trace /tmp/tr -protocol pik2
//	go run ./cmd/mrreplay -trace /tmp/tr -protocol pik2 -repeat 8 -parallel 4
//	go run ./cmd/mrreplay -trace /tmp/tr -info
//
// -repeat N replays the trace N times (on -parallel workers) and verifies
// that every replay renders the identical suspicion log — the subsystem's
// determinism claim, checked on demand against any trace.
//
// Protocol options are given textually (-options "k=1,round=1s"), parsed
// by the same registry descriptors mrsim's scenario files use.
//
// Observability mirrors mrsim: -metrics snapshots counters (including
// rw_replay_events_total), -timeline dumps the virtual-time event trace
// (the -trace name is taken by the trace directory here), -cpuprofile and
// -memprofile write pprof profiles. All instrumentation goes to files or
// stderr; stdout carries only the report.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"routerwatch/internal/capture"
	"routerwatch/internal/detector"
	"routerwatch/internal/protocol"
	_ "routerwatch/internal/protocol/catalog"
	"routerwatch/internal/runner"
	"routerwatch/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mrreplay: ")

	traceDir := flag.String("trace", "", "trace directory recorded by mrsim -record (required)")
	protoName := flag.String("protocol", "pik2", "registry protocol to attach (see mrsim -list-protocols)")
	options := flag.String("options", "", "protocol options as key=value pairs, comma separated (e.g. \"k=1,round=1s\")")
	dur := flag.Duration("duration", 0, "replay horizon (0 = the recorded duration)")
	repeat := flag.Int("repeat", 1, "replay the trace this many times and verify identical verdicts")
	parallel := flag.Int("parallel", 0, "worker pool size for -repeat (0 = GOMAXPROCS, 1 = serial)")
	verdicts := flag.String("verdicts", "", "write the full suspicion log, one per line, to this file")
	info := flag.Bool("info", false, "print the trace manifest and exit")

	// The telemetry flags are registered by hand: telemetry's standard set
	// claims -trace, which here names the trace directory, so the event
	// timeline answers to -timeline instead.
	var tf telemetry.Flags
	flag.StringVar(&tf.Metrics, "metrics", "",
		"write a metrics snapshot at exit (.prom/.txt = Prometheus text, else JSON; - = Prometheus to stderr)")
	flag.StringVar(&tf.Trace, "timeline", "",
		"write the virtual-time event trace at exit (.json = Chrome trace-event, else plain timeline; - = timeline to stderr)")
	flag.BoolVar(&tf.TracePackets, "trace-packets", false,
		"include per-packet events in -timeline (large)")
	flag.StringVar(&tf.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	flag.StringVar(&tf.MemProfile, "memprofile", "", "write a pprof allocation profile at exit")
	flag.Parse()

	if *traceDir == "" {
		log.Fatal("-trace is required: a directory recorded by mrsim -record")
	}

	if *info {
		meta, err := capture.ReadMeta(*traceDir)
		if err != nil {
			log.Fatal(err)
		}
		printInfo(meta)
		return
	}

	d, err := protocol.Lookup(*protoName)
	if err != nil {
		log.Fatal(err)
	}
	if d.Attach == nil {
		log.Fatalf("protocol %q only runs as a full scenario; it cannot attach to a trace", *protoName)
	}
	params, err := parseParams(*options)
	if err != nil {
		log.Fatal(err)
	}
	var opts any
	if len(params) > 0 {
		if d.ParseOptions == nil {
			log.Fatalf("protocol %q takes no options", *protoName)
		}
		if opts, err = d.ParseOptions(params); err != nil {
			log.Fatal(err)
		}
	}

	if tf.CPUProfile != "" {
		stop, perr := telemetry.StartCPUProfile(tf.CPUProfile)
		if perr != nil {
			log.Fatal(perr)
		}
		defer stop()
	}

	tel := tf.NewSet()
	logbook, err := replay(*traceDir, *protoName, opts, *dur, tel)
	if err != nil {
		log.Fatal(err)
	}
	report(logbook)
	if *verdicts != "" {
		if err := writeVerdicts(*verdicts, logbook); err != nil {
			log.Fatal(err)
		}
	}

	if *repeat > 1 {
		if err := verifyRepeats(*traceDir, *protoName, opts, *dur, *repeat, *parallel, render(logbook)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%d replays, all verdicts byte-identical\n", *repeat)
	}

	if err := tf.Finish(tel); err != nil {
		log.Fatal(err)
	}
}

// replay opens the trace, attaches the protocol, and runs to the horizon.
func replay(dir, name string, opts any, dur time.Duration, tel *telemetry.Set) (*detector.Log, error) {
	env, err := capture.OpenTrace(dir, capture.TraceOptions{Telemetry: tel})
	if err != nil {
		return nil, err
	}
	defer env.Close()
	hooks, logbook := protocol.LogHooks()
	if _, err := protocol.Attach(env, name, opts, hooks); err != nil {
		return nil, err
	}
	env.Run(dur)
	if err := env.Err(); err != nil {
		return nil, err
	}
	return logbook, nil
}

// verifyRepeats replays the trace repeat-1 more times on a worker pool and
// requires every rendered suspicion log to equal the first replay's.
func verifyRepeats(dir, name string, opts any, dur time.Duration, repeat, parallel int, want string) error {
	outs, _ := runner.Map(runner.Config{Workers: parallel}, repeat-1, func(runner.Trial) string {
		logbook, err := replay(dir, name, opts, dur, nil)
		if err != nil {
			return "error: " + err.Error()
		}
		return render(logbook)
	})
	for i, got := range outs {
		if got != want {
			return fmt.Errorf("replay %d diverged from replay 0:\n--- replay 0\n%s--- replay %d\n%s",
				i+1, want, i+1, got)
		}
	}
	return nil
}

// parseParams decodes "k=1,round=1s" into protocol.Params.
func parseParams(s string) (protocol.Params, error) {
	if s == "" {
		return nil, nil
	}
	p := make(protocol.Params)
	for _, kv := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok || key == "" {
			return nil, fmt.Errorf("-options: %q is not key=value", kv)
		}
		p[key] = val
	}
	return p, nil
}

// render flattens a suspicion log into the byte-comparable transcript.
func render(logbook *detector.Log) string {
	var b strings.Builder
	for _, s := range logbook.All() {
		b.WriteString(s.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// writeVerdicts dumps the complete suspicion log, one per line — the same
// format mrsim -verdicts writes, so the two are diffable.
func writeVerdicts(path string, logbook *detector.Log) error {
	return os.WriteFile(path, []byte(render(logbook)), 0o644)
}

func printInfo(meta *capture.Meta) {
	fmt.Printf("seed %d, duration %v, control delay %v, jitter %v\n",
		meta.Seed, meta.Duration.D(), meta.ControlDelay.D(), meta.Jitter.D())
	fmt.Printf("%d routers, %d directed links\n", len(meta.Nodes), len(meta.Links))
	for i, n := range meta.Nodes {
		fmt.Printf("  r%-3d %-14s %s\n", i, n, meta.Files[i])
	}
}

func report(logbook *detector.Log) {
	fmt.Printf("%d suspicions:\n", logbook.Len())
	for i, s := range logbook.All() {
		if i >= 12 {
			fmt.Printf("  ... and %d more\n", logbook.Len()-i)
			break
		}
		fmt.Printf("  %v\n", s)
	}
	if logbook.Len() == 0 {
		fmt.Println("  (none)")
	}
}
