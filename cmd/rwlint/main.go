// Command rwlint is routerwatch's determinism lint suite: a multichecker
// running the custom analyzers that machine-enforce the invariants the
// parallel trial runner's bitwise determinism rests on, plus local ports
// of the stock nilness and shadow passes and the interprocedural
// call-graph analyzers (envpurity, lockguard, errsink).
//
//	rwlint [-only a,b] [-list] [-timing] [-json report.json] [packages]
//
// With no arguments (or "./..."), the whole module is analyzed. Exit
// status: 0 clean, 1 diagnostics reported, 2 internal error. -json writes
// a machine-readable report (findings plus per-analyzer wall time) even
// when findings make the exit status nonzero, so CI can always upload it.
// The analyzer catalogue, the invariants behind it, and the allowlists are
// documented in DESIGN.md "Static analysis" and "Interprocedural
// analysis".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"routerwatch/internal/analysis"
	"routerwatch/internal/analysis/driver"
	"routerwatch/internal/analysis/envpurity"
	"routerwatch/internal/analysis/errsink"
	"routerwatch/internal/analysis/globalrand"
	"routerwatch/internal/analysis/hotpathalloc"
	"routerwatch/internal/analysis/load"
	"routerwatch/internal/analysis/lockguard"
	"routerwatch/internal/analysis/mapyield"
	"routerwatch/internal/analysis/nilinstrument"
	"routerwatch/internal/analysis/passes/nilness"
	"routerwatch/internal/analysis/passes/shadow"
	"routerwatch/internal/analysis/walltime"
)

// suite is the full analyzer catalogue, in run order: the per-package
// syntactic passes first, then the module-wide call-graph analyzers (which
// share one cached call graph through the driver session).
var suite = []*analysis.Analyzer{
	globalrand.Analyzer,
	hotpathalloc.Analyzer,
	walltime.Analyzer,
	mapyield.Analyzer,
	nilinstrument.Analyzer,
	nilness.Analyzer,
	shadow.Analyzer,
	envpurity.Analyzer,
	lockguard.Analyzer,
	errsink.Analyzer,
}

// report is the -json output shape.
type report struct {
	Module    string           `json:"module"`
	Packages  int              `json:"packages"`
	LoadMs    int64            `json:"load_ms"`
	Analyzers []analyzerReport `json:"analyzers"`
	Findings  []findingReport  `json:"findings"`
	Total     int              `json:"total_findings"`
}

type analyzerReport struct {
	Name     string `json:"name"`
	Findings int    `json:"findings"`
	Ms       int64  `json:"ms"`
}

type findingReport struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	timing := flag.Bool("timing", false, "print per-analyzer wall time to stderr")
	jsonPath := flag.String("json", "", "write a JSON report (findings + timings) to this path")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: rwlint [flags] [packages]\n\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\nanalyzers:\n")
		for _, a := range suite {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := suite
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range suite {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a := byName[strings.TrimSpace(name)]
			if a == nil {
				fmt.Fprintf(os.Stderr, "rwlint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rwlint: %v\n", err)
		os.Exit(2)
	}
	l := load.New(load.Config{Dir: root, Module: "routerwatch"})

	loadStart := time.Now()
	var pkgs []*load.Package
	args := flag.Args()
	if len(args) == 0 || (len(args) == 1 && (args[0] == "./..." || args[0] == "...")) {
		pkgs, err = l.LoadAll()
	} else {
		paths := make([]string, len(args))
		for i, a := range args {
			paths[i] = importPath(a)
		}
		pkgs, err = l.Load(paths...)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rwlint: %v\n", err)
		os.Exit(2)
	}
	loadMs := time.Since(loadStart).Milliseconds()

	// One session across the per-analyzer runs: module analyzers share the
	// cached call graph, so timing them individually stays honest (the
	// first one pays graph construction, the rest measure only their own
	// sweep — the JSON makes that split visible).
	session := driver.NewSession(l, pkgs)
	rep := report{Module: "routerwatch", Packages: len(pkgs), LoadMs: loadMs,
		Findings: []findingReport{}}
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		start := time.Now()
		ds, err := session.Run([]*analysis.Analyzer{a})
		elapsed := time.Since(start).Milliseconds()
		if err != nil {
			fmt.Fprintf(os.Stderr, "rwlint: %v\n", err)
			os.Exit(2)
		}
		rep.Analyzers = append(rep.Analyzers, analyzerReport{Name: a.Name, Findings: len(ds), Ms: elapsed})
		if *timing {
			fmt.Fprintf(os.Stderr, "rwlint: timing: %-14s %4dms  %d finding(s)\n", a.Name, elapsed, len(ds))
		}
		diags = append(diags, ds...)
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })

	for _, d := range diags {
		fmt.Println(driver.Format(l.Fset, d))
		pos := l.Fset.Position(d.Pos)
		rep.Findings = append(rep.Findings, findingReport{
			File: relTo(root, pos.Filename), Line: pos.Line, Col: pos.Column,
			Analyzer: d.Category, Message: d.Message,
		})
	}
	rep.Total = len(diags)

	if *jsonPath != "" {
		if err := writeReport(*jsonPath, &rep); err != nil {
			fmt.Fprintf(os.Stderr, "rwlint: %v\n", err)
			os.Exit(2)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "rwlint: %d finding(s) from %d analyzer(s) across %d package(s) (load %dms)\n",
			len(diags), countReporting(rep.Analyzers), len(pkgs), loadMs)
		os.Exit(1)
	}
}

func countReporting(ars []analyzerReport) int {
	n := 0
	for _, ar := range ars {
		if ar.Findings > 0 {
			n++
		}
	}
	return n
}

// writeReport marshals the JSON report, failing loudly on any I/O error —
// a half-written report is worse than none.
func writeReport(path string, rep *report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// relTo renders a findings path relative to the module root when possible.
func relTo(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return path
}

// importPath normalizes a command-line package argument ("./internal/sim",
// "internal/sim", "routerwatch/internal/sim") to an import path.
func importPath(arg string) string {
	arg = strings.TrimSuffix(filepath.ToSlash(arg), "/")
	arg = strings.TrimPrefix(arg, "./")
	if arg == "." || arg == "" {
		return "routerwatch"
	}
	if arg == "routerwatch" || strings.HasPrefix(arg, "routerwatch/") {
		return arg
	}
	return "routerwatch/" + arg
}

// moduleRoot finds the directory holding go.mod, starting from the
// working directory — so rwlint works from any subdirectory of the repo.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory; run from inside the module")
		}
		dir = parent
	}
}
