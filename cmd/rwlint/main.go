// Command rwlint is routerwatch's determinism lint suite: a multichecker
// running the custom analyzers that machine-enforce the invariants the
// parallel trial runner's bitwise determinism rests on, plus local ports
// of the stock nilness and shadow passes.
//
//	rwlint [-only a,b] [-list] [packages]
//
// With no arguments (or "./..."), the whole module is analyzed. Exit
// status: 0 clean, 1 diagnostics reported, 2 internal error. The analyzer
// catalogue, the invariants behind it, and the wall-clock allowlist are
// documented in DESIGN.md "Static analysis".
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"routerwatch/internal/analysis"
	"routerwatch/internal/analysis/driver"
	"routerwatch/internal/analysis/globalrand"
	"routerwatch/internal/analysis/hotpathalloc"
	"routerwatch/internal/analysis/load"
	"routerwatch/internal/analysis/mapyield"
	"routerwatch/internal/analysis/nilinstrument"
	"routerwatch/internal/analysis/passes/nilness"
	"routerwatch/internal/analysis/passes/shadow"
	"routerwatch/internal/analysis/walltime"
)

// suite is the full analyzer catalogue, in reporting order.
var suite = []*analysis.Analyzer{
	globalrand.Analyzer,
	hotpathalloc.Analyzer,
	walltime.Analyzer,
	mapyield.Analyzer,
	nilinstrument.Analyzer,
	nilness.Analyzer,
	shadow.Analyzer,
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: rwlint [flags] [packages]\n\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\nanalyzers:\n")
		for _, a := range suite {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := suite
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range suite {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a := byName[strings.TrimSpace(name)]
			if a == nil {
				fmt.Fprintf(os.Stderr, "rwlint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rwlint: %v\n", err)
		os.Exit(2)
	}
	l := load.New(load.Config{Dir: root, Module: "routerwatch"})

	var pkgs []*load.Package
	args := flag.Args()
	if len(args) == 0 || (len(args) == 1 && (args[0] == "./..." || args[0] == "...")) {
		pkgs, err = l.LoadAll()
	} else {
		paths := make([]string, len(args))
		for i, a := range args {
			paths[i] = importPath(a)
		}
		pkgs, err = l.Load(paths...)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rwlint: %v\n", err)
		os.Exit(2)
	}

	diags, err := driver.Run(l, pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rwlint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(driver.Format(l.Fset, d))
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "rwlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// importPath normalizes a command-line package argument ("./internal/sim",
// "internal/sim", "routerwatch/internal/sim") to an import path.
func importPath(arg string) string {
	arg = strings.TrimSuffix(filepath.ToSlash(arg), "/")
	arg = strings.TrimPrefix(arg, "./")
	if arg == "." || arg == "" {
		return "routerwatch"
	}
	if arg == "routerwatch" || strings.HasPrefix(arg, "routerwatch/") {
		return arg
	}
	return "routerwatch/" + arg
}

// moduleRoot finds the directory holding go.mod, starting from the
// working directory — so rwlint works from any subdirectory of the repo.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory; run from inside the module")
		}
		dir = parent
	}
}
