// Command campaign sweeps the generated adversary space against the
// detection protocols and reports the detection/evasion frontier.
//
//	go run ./cmd/campaign -budget 32 -seed 7
//	go run ./cmd/campaign -protocols pik2,watchers -operators rate,collude
//	go run ./cmd/campaign -json frontier.json
//	go run ./cmd/campaign -survivors internal/mutation/testdata/survivors -update
//	go run ./cmd/campaign -list-operators
//
// Every mutation operator in internal/mutation is applied to each swept
// protocol's canonical scenario; the mutants run on the bounded worker
// pool (-parallel; default GOMAXPROCS, 1 = serial) and each suspicion log
// is judged with the §4.2.2 accuracy/completeness checkers. The frontier
// table and JSON report contain only virtual-time, seed-derived
// quantities, so a fixed -seed campaign is bitwise identical across runs
// and across -parallel settings.
//
// Undetected, non-inert mutants ("survivors") are the interesting output:
// with -survivors DIR -update each is serialized — spec plus its
// cross-protocol verdicts — into DIR, where the regression suite in
// internal/mutation replays it on every go test run.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"routerwatch/internal/mutation"
	_ "routerwatch/internal/protocol/catalog"
)

func main() {
	log.SetFlags(0)
	var (
		protocolsFlag = flag.String("protocols", "", "comma-separated protocols to sweep (default pi2,pik2,watchers)")
		operatorsFlag = flag.String("operators", "", "comma-separated mutation operators (default: all)")
		budget        = flag.Int("budget", 32, "mutant budget per protocol")
		seed          = flag.Int64("seed", 1, "campaign seed (generation and every mutant scenario)")
		parallel      = flag.Int("parallel", 0, "worker pool size (0 = GOMAXPROCS, 1 = serial)")
		duration      = flag.Duration("duration", 15*time.Second, "virtual duration each mutant runs (0 = full canonical scenario)")
		jsonPath      = flag.String("json", "", "write the frontier report as JSON to this file (- for stdout)")
		survivorsDir  = flag.String("survivors", "", "survivor directory (with -update: write survivors here)")
		update        = flag.Bool("update", false, "serialize survivors into -survivors dir")
		listOperators = flag.Bool("list-operators", false, "list mutation operators and exit")
		quiet         = flag.Bool("quiet", false, "suppress progress on stderr")
	)
	flag.Parse()

	if *listOperators {
		for _, op := range mutation.Catalog() {
			fmt.Printf("%-10s %s\n", op.Name, op.Doc)
		}
		return
	}

	cfg := mutation.Config{
		Protocols: splitList(*protocolsFlag),
		Budget:    *budget,
		Seed:      *seed,
		Workers:   *parallel,
		Duration:  *duration,
	}
	if names := splitList(*operatorsFlag); names != nil {
		ops, err := mutation.Operators(names)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Operators = ops
	}
	if !*quiet {
		cfg.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d mutants", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	rep, mutants, err := mutation.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(rep.Table())

	if *jsonPath != "" {
		enc, err := rep.Encode()
		if err != nil {
			log.Fatal(err)
		}
		if *jsonPath == "-" {
			if _, err := os.Stdout.Write(enc); err != nil {
				log.Fatal(err)
			}
		} else if err := os.WriteFile(*jsonPath, enc, 0o644); err != nil {
			log.Fatal(err)
		}
	}

	if *update {
		if *survivorsDir == "" {
			log.Fatal("-update requires -survivors DIR")
		}
		survs, err := mutation.Harvest(rep, mutants, cfg.Protocols)
		if err != nil {
			log.Fatal(err)
		}
		if err := mutation.WriteSurvivors(*survivorsDir, survs); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %d survivor(s) to %s\n", len(survs), *survivorsDir)
	}
}

// splitList parses a comma-separated flag; empty means nil (defaults).
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
