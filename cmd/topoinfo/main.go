// Command topoinfo reports the per-router monitoring state of the
// path-segment protocols on a topology — the data behind Figs 5.2 and 5.4 —
// plus the structural shape of the graph (tier sizes, degree histogram,
// diameter, cross-region links) for the generated internet-scale
// topologies.
//
//	go run ./cmd/topoinfo -topology sprintlink -maxk 8
//	go run ./cmd/topoinfo -topology ebone -mode nodes
//	go run ./cmd/topoinfo -topology abilene
//	go run ./cmd/topoinfo -topology isp:1000:20 -mode structure
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"routerwatch/internal/baseline"
	"routerwatch/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("topoinfo: ")

	topoName := flag.String("topology", "sprintlink",
		"sprintlink | ebone | abilene | line:<n> | isp:<nodes>[:<pops>]")
	mode := flag.String("mode", "both", "nodes (Π2) | ends (Πk+2) | both | structure (shape only)")
	maxK := flag.Int("maxk", 8, "largest AdjacentFault(k)")
	topoSeed := flag.Int64("topo-seed", 1, "generator seed for isp topologies")
	flag.Parse()

	g, err := buildTopology(*topoName, *topoSeed)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("topology %s: %d routers, %d duplex links\n",
		*topoName, g.NumNodes(), g.NumDuplexLinks())
	printStructure(g)

	if *mode == "structure" {
		os.Exit(0)
	}

	paths := g.AllPairsPaths()
	fmt.Printf("%d routing paths\n\n", len(paths))

	printMode := func(m topology.MonitorMode, name string) {
		fmt.Printf("%s:\n  k   max|Pr|   avg|Pr|   median|Pr|\n", name)
		for k := 1; k <= *maxK; k++ {
			s := topology.ComputePrStats(g, paths, k, m)
			fmt.Printf("  %-3d %-9d %-9.1f %.1f\n", s.K, s.Max, s.Mean, s.Median)
		}
		fmt.Println()
	}
	if *mode == "nodes" || *mode == "both" {
		printMode(topology.ModeNodes, "Protocol Π2 (per path-segment nodes, Fig 5.2)")
	}
	if *mode == "ends" || *mode == "both" {
		printMode(topology.ModeEnds, "Protocol Πk+2 (per path-segment ends, Fig 5.4)")
	}

	total, max := 0, 0
	for _, r := range g.Nodes() {
		s := baseline.CounterStateSize(g, r)
		total += s
		if s > max {
			max = s
		}
	}
	fmt.Printf("WATCHERS comparison (§5.1.1): %d counters/router mean, %d max\n",
		total/g.NumNodes(), max)
	os.Exit(0)
}

// buildTopology resolves the -topology argument.
func buildTopology(name string, seed int64) (*topology.Graph, error) {
	switch name {
	case "sprintlink":
		return topology.Generate(topology.SprintlinkSpec()), nil
	case "ebone":
		return topology.Generate(topology.EBONESpec()), nil
	case "abilene":
		return topology.Abilene(), nil
	}
	var n, pops int
	if _, err := fmt.Sscanf(name, "isp:%d:%d", &n, &pops); err == nil {
		return topology.ISP(topology.ISPSpec{Nodes: n, PoPs: pops, Seed: seed}), nil
	}
	if _, err := fmt.Sscanf(name, "isp:%d", &n); err == nil && n > 0 {
		return topology.ISP(topology.ISPSpec{Nodes: n, Seed: seed}), nil
	}
	if _, err := fmt.Sscanf(name, "line:%d", &n); err == nil && n >= 2 {
		return topology.Line(n), nil
	}
	return nil, fmt.Errorf("unknown topology %q", name)
}

// printStructure reports the graph's shape: hierarchy tiers (when the
// ISP-generator naming convention identifies them), degree distribution,
// diameter, and — for region-tagged topologies — the cross-region link
// count that bounds the sharded core's lookahead.
func printStructure(g *topology.Graph) {
	core, agg, edge := 0, 0, 0
	for _, id := range g.Nodes() {
		var p, i int
		name := g.Name(id)
		if _, err := fmt.Sscanf(name, "p%dc%d", &p, &i); err == nil {
			core++
			continue
		}
		if _, err := fmt.Sscanf(name, "p%da%d", &p, &i); err == nil {
			agg++
			continue
		}
		if _, err := fmt.Sscanf(name, "p%de%d", &p, &i); err == nil {
			edge++
		}
	}
	if g.NumNodes() > 0 && core+agg+edge == g.NumNodes() {
		fmt.Printf("tiers: %d core, %d aggregation, %d edge\n", core, agg, edge)
	}

	hist := topology.DegreeHistogram(g)
	fmt.Printf("degree histogram:")
	for d, c := range hist {
		if c > 0 {
			fmt.Printf(" %d:%d", d, c)
		}
	}
	fmt.Println(" (degree:count)")

	fmt.Printf("diameter: %d hops\n", topology.Diameter(g))
	if g.Regions() != nil {
		fmt.Printf("regions: %d, cross-region duplex links: %d\n",
			g.NumRegions(), topology.CrossRegionLinks(g))
	}
}
