// Command topoinfo reports the per-router monitoring state of the
// path-segment protocols on a topology — the data behind Figs 5.2 and 5.4.
//
//	go run ./cmd/topoinfo -topology sprintlink -maxk 8
//	go run ./cmd/topoinfo -topology ebone -mode nodes
//	go run ./cmd/topoinfo -topology abilene
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"routerwatch/internal/baseline"
	"routerwatch/internal/topology"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("topoinfo: ")

	topoName := flag.String("topology", "sprintlink", "sprintlink | ebone | abilene | line:<n>")
	mode := flag.String("mode", "both", "nodes (Π2) | ends (Πk+2) | both")
	maxK := flag.Int("maxk", 8, "largest AdjacentFault(k)")
	flag.Parse()

	var g *topology.Graph
	switch *topoName {
	case "sprintlink":
		g = topology.Generate(topology.SprintlinkSpec())
	case "ebone":
		g = topology.Generate(topology.EBONESpec())
	case "abilene":
		g = topology.Abilene()
	default:
		var n int
		if _, err := fmt.Sscanf(*topoName, "line:%d", &n); err != nil || n < 2 {
			log.Fatalf("unknown topology %q", *topoName)
		}
		g = topology.Line(n)
	}

	fmt.Printf("topology %s: %d routers, %d duplex links\n",
		*topoName, g.NumNodes(), g.NumDuplexLinks())
	paths := g.AllPairsPaths()
	fmt.Printf("%d routing paths\n\n", len(paths))

	printMode := func(m topology.MonitorMode, name string) {
		fmt.Printf("%s:\n  k   max|Pr|   avg|Pr|   median|Pr|\n", name)
		for k := 1; k <= *maxK; k++ {
			s := topology.ComputePrStats(g, paths, k, m)
			fmt.Printf("  %-3d %-9d %-9.1f %.1f\n", s.K, s.Max, s.Mean, s.Median)
		}
		fmt.Println()
	}
	if *mode == "nodes" || *mode == "both" {
		printMode(topology.ModeNodes, "Protocol Π2 (per path-segment nodes, Fig 5.2)")
	}
	if *mode == "ends" || *mode == "both" {
		printMode(topology.ModeEnds, "Protocol Πk+2 (per path-segment ends, Fig 5.4)")
	}

	total, max := 0, 0
	for _, r := range g.Nodes() {
		s := baseline.CounterStateSize(g, r)
		total += s
		if s > max {
			max = s
		}
	}
	fmt.Printf("WATCHERS comparison (§5.1.1): %d counters/router mean, %d max\n",
		total/g.NumNodes(), max)
	os.Exit(0)
}
