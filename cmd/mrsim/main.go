// Command mrsim runs one malicious-router detection scenario: pick a
// topology, a detection protocol, and an attack; watch the suspicions.
//
//	go run ./cmd/mrsim -protocol pik2 -attack drop -rate 1
//	go run ./cmd/mrsim -protocol pi2 -attack modify
//	go run ./cmd/mrsim -protocol chi -attack masked90
//	go run ./cmd/mrsim -protocol watchers -attack drop
//	go run ./cmd/mrsim -protocol fatih -trace fatih.json
//	go run ./cmd/mrsim -list-protocols
//	go run ./cmd/mrsim -scenario myrun.json
//
// Protocols are resolved through the internal/protocol registry
// (-list-protocols enumerates them), and every run — flag-driven or from
// a -scenario JSON file — goes through protocol.Run, so mrsim contains no
// protocol-specific wiring of its own.
//
// -protocol fatih runs the full Abilene/Fatih scenario (§5.3, Fig 5.7):
// OSPF convergence, the Kansas City compromise, Πk+2 detection and the
// alert-driven reroute.
//
// Observability: -metrics and -trace snapshot the run's counters and
// virtual-time event timeline (see internal/telemetry); -cpuprofile and
// -memprofile write pprof profiles. All instrumentation output goes to
// files or stderr — stdout is unchanged by these flags.
//
// Capture & replay: -record dumps the run as per-router pcap traces (a
// directory replayable with cmd/mrreplay), and -verdicts writes the full
// suspicion log one line per suspicion — the byte-comparable artifact the
// replay smoke diffs against a trace replay of the same run. Both are
// single-run features.
//
// With -trials N > 1 the scenario is replayed over N independent seeds on a
// bounded worker pool (-parallel; default GOMAXPROCS, 1 = serial) and the
// aggregate detection statistics are reported. Trial i runs on its own
// simulator kernel with RNG stream sim.DeriveSeed(seed, i), so the numbers
// are identical for every -parallel value; per-trial metrics fold the same
// way (runner.MapFold).
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"routerwatch/internal/capture"
	"routerwatch/internal/detector"
	"routerwatch/internal/fatih"
	"routerwatch/internal/packet"
	"routerwatch/internal/protocol"
	_ "routerwatch/internal/protocol/catalog"
	"routerwatch/internal/runner"
	"routerwatch/internal/stats"
	"routerwatch/internal/telemetry"
)

// outcome is one trial's result.
type outcome struct {
	suspicions int
	implicated bool
	// firstAt is the first suspicion time (0 if none).
	firstAt time.Duration
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("mrsim: ")

	protoName := flag.String("protocol", "pik2", "pik2 | pi2 | chi | watchers | fatih (see -list-protocols)")
	attackName := flag.String("attack", "drop", "drop | modify | reorder | fabricate | syn | masked90 | none")
	rate := flag.Float64("rate", 1, "drop probability for the drop attack")
	seed := flag.Int64("seed", 1, "simulation seed")
	dur := flag.Duration("duration", 30*time.Second, "simulated duration")
	trials := flag.Int("trials", 1, "independent trials (per-trial derived seeds)")
	shards := flag.Int("shards", 0, "event-core shards (0 = scenario's value; verdicts are identical for any count)")
	parallel := flag.Int("parallel", 0, "worker pool size for -trials (0 = GOMAXPROCS, 1 = serial)")
	scenario := flag.String("scenario", "", "run a declarative scenario file (JSON Spec) instead of the flag-built one")
	record := flag.String("record", "", "record per-router pcap traces into this directory (single-run only; replay with mrreplay)")
	verdicts := flag.String("verdicts", "", "write the full suspicion log, one per line, to this file (single-run only)")
	list := flag.Bool("list-protocols", false, "list the registered protocols and exit")
	tf := telemetry.RegisterFlags(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, name := range protocol.Names() {
			d, _ := protocol.Lookup(name)
			fmt.Printf("%-14s %s\n", name, d.Summary)
		}
		return
	}

	spec, err := buildSpec(*scenario, *protoName, *attackName, *rate, *seed, *dur)
	if err != nil {
		log.Fatal(err)
	}
	if *shards > 0 {
		spec.Shards = *shards
	}

	if tf.CPUProfile != "" {
		stop, err := telemetry.StartCPUProfile(tf.CPUProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
	}

	if *trials <= 1 {
		tel := tf.NewSet()
		logbook, faulty := runSpec(spec, true, tel, *record)
		report(logbook, faulty)
		if *verdicts != "" {
			if err := writeVerdicts(*verdicts, logbook); err != nil {
				log.Fatal(err)
			}
		}
		if err := tf.Finish(tel); err != nil {
			log.Fatal(err)
		}
		return
	}

	// Aggregate mode folds per-trial registries deterministically; a trace
	// ring shared across concurrent kernels would interleave unrelated
	// virtual timelines, so -trace is a single-run feature — as are -record
	// (one trace directory describes one run) and -verdicts.
	if tf.Trace != "" {
		fmt.Fprintln(os.Stderr, "mrsim: -trace applies to single runs; ignoring it for -trials > 1")
	}
	if *record != "" {
		fmt.Fprintln(os.Stderr, "mrsim: -record applies to single runs; ignoring it for -trials > 1")
	}
	if *verdicts != "" {
		fmt.Fprintln(os.Stderr, "mrsim: -verdicts applies to single runs; ignoring it for -trials > 1")
	}
	var foldReg *telemetry.Registry
	if tf.Metrics != "" {
		foldReg = telemetry.NewRegistry()
	}
	agg := stats.NewSharded(shardCount(*parallel))
	outs, rep := runner.MapFold(runner.Config{Workers: *parallel, BaseSeed: spec.Seed}, *trials, foldReg,
		func(tr runner.Trial, reg *telemetry.Registry) outcome {
			var tel *telemetry.Set
			if reg != nil {
				tel = &telemetry.Set{Metrics: reg}
			}
			s := *spec
			s.Seed = tr.Seed
			logbook, faulty := runSpec(&s, false, tel, "")
			o := summarize(logbook, faulty)
			if o.firstAt > 0 {
				agg.Shard(tr.Worker).Observe(tr.Index, o.firstAt.Seconds())
			}
			return o
		})

	detected, implicated := 0, 0
	for _, o := range outs {
		if o.suspicions > 0 {
			detected++
		}
		if o.implicated {
			implicated++
		}
	}
	first := agg.Fold()
	fmt.Printf("%d trials of %s/%s (base seed %d):\n", *trials, spec.Protocol, *attackName, spec.Seed)
	fmt.Printf("  detected:        %d/%d\n", detected, *trials)
	fmt.Printf("  faulty implicated: %d/%d\n", implicated, *trials)
	if first.N() > 0 {
		fmt.Printf("  first suspicion: mean %.2fs, median %.2fs, max %.2fs\n",
			first.Mean(), first.Median(), first.Max())
	}
	fmt.Fprintf(os.Stderr,
		"mrsim: %d workers: wall %.1fs, cumulative %.1fs, speedup %.2fx, utilization %.0f%%\n",
		rep.Workers, rep.Wall.Seconds(), rep.CumTrial.Seconds(), rep.Speedup(), 100*rep.Utilization())
	if err := tf.Finish(&telemetry.Set{Metrics: foldReg}); err != nil {
		log.Fatal(err)
	}
}

// shardCount mirrors runner.Config's worker resolution for shard sizing.
func shardCount(parallel int) int {
	if parallel > 0 {
		return parallel
	}
	return 64 // generous cover for GOMAXPROCS; unused shards cost nothing
}

// buildSpec assembles the declarative scenario: from a -scenario file when
// given, otherwise from the flag set. The flag-built specs reproduce the
// historical hard-wired harnesses exactly.
func buildSpec(file, protoName, attackName string, rate float64, seed int64, dur time.Duration) (*protocol.Spec, error) {
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return protocol.DecodeSpec(data)
	}

	switch protoName {
	case "chi":
		spec := &protocol.Spec{
			Name: "chi", Protocol: "chi", Seed: seed,
			Duration: protocol.Duration(dur),
			Topology: protocol.TopologySpec{Kind: "simple-chi", N: 3, M: 2},
		}
		switch attackName {
		case "none":
		case "drop":
			// The canonical χ drop experiment uses a fixed 20% rate; -rate
			// tunes the path-segment scenarios only.
			spec.Attack = &protocol.AttackSpec{Kind: "drop", Rate: 0.2}
		default:
			// masked90, syn — and anything the scenario will reject itself.
			spec.Attack = &protocol.AttackSpec{Kind: attackName}
		}
		return spec, nil

	case "fatih":
		// Durations below a minute fall back to the scenario's canonical
		// 240 s (the attack only starts at 117 s).
		spec := &protocol.Spec{
			Name: "fatih", Protocol: "fatih", Seed: seed,
			Topology: protocol.TopologySpec{Kind: "abilene"},
		}
		if dur >= time.Minute {
			spec.Duration = protocol.Duration(dur)
		}
		if attackName == "none" {
			spec.Attack = &protocol.AttackSpec{Kind: "none"}
		}
		return spec, nil
	}

	// Path-segment protocols run on a 5-router line with the middle
	// router compromised.
	spec := &protocol.Spec{
		Name: protoName, Protocol: protoName, Seed: seed,
		Duration: protocol.Duration(dur),
		Jitter:   protocol.Duration(100 * time.Microsecond),
		Topology: protocol.TopologySpec{Kind: "line", N: 5},
		Traffic: []protocol.TrafficSpec{{
			Kind: "pair", Src: 0, Dst: 4, Count: int(dur.Seconds() * 500),
			Interval: protocol.Duration(2 * time.Millisecond),
			Offset:   protocol.Duration(time.Microsecond),
			Size:     500, Flow: 1, ReverseFlow: 2,
		}},
	}
	switch protoName {
	case "pik2":
		spec.Options = protocol.Params{
			"k": "1", "round": "1s", "timeout": "250ms",
			"loss-threshold": "2", "fabrication-threshold": "2",
		}
	case "pi2":
		spec.Options = protocol.Params{
			"k": "1", "round": "1s", "settle": "250ms",
			"loss-threshold": "2", "fabrication-threshold": "2",
		}
	case "watchers":
		spec.Options = protocol.Params{
			"round": "1s", "threshold": "5000", "fixed": "true",
		}
	default:
		// Let the registry produce the self-explaining error.
		if _, err := protocol.Lookup(protoName); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("protocol %q has no flag-built scenario; use -scenario", protoName)
	}
	switch attackName {
	case "drop":
		spec.Attack = &protocol.AttackSpec{
			Kind: "drop", Node: 2, Rate: rate,
			Start: protocol.Duration(5 * time.Second),
		}
	case "modify":
		spec.Attack = &protocol.AttackSpec{
			Kind: "modify", Node: 2, Start: protocol.Duration(5 * time.Second),
		}
	case "reorder":
		spec.Attack = &protocol.AttackSpec{
			Kind: "reorder", Node: 2, Select: "data",
			Jitter: protocol.Duration(10 * time.Millisecond),
		}
	case "fabricate":
		spec.Attack = &protocol.AttackSpec{Kind: "fabricate", Node: 2, Src: 0, Dst: 4}
	case "none":
	default:
		return nil, fmt.Errorf("attack %q not available for path-segment protocols", attackName)
	}
	return spec, nil
}

// runSpec executes one trial and returns its suspicion log and the
// compromised router. verbose enables the single-run narration; recordDir,
// when non-empty, dumps per-router pcap traces of the run there.
func runSpec(spec *protocol.Spec, verbose bool, tel *telemetry.Set, recordDir string) (*detector.Log, packet.NodeID) {
	run := protocol.RunOptions{Telemetry: tel}
	if verbose {
		run.Progress = func(format string, args ...any) { fmt.Printf(format, args...) }
	}
	var rec *capture.Recorder
	if recordDir != "" {
		rec = capture.NewRecorder(recordDir, capture.RecorderOptions{Gzip: true})
		run.BeforeRun = func(r *protocol.Result) {
			if err := rec.Attach(r.Net); err != nil {
				log.Fatal(err)
			}
		}
	}
	res, err := protocol.Run(spec, run)
	if err != nil {
		log.Fatal(err)
	}
	if rec != nil {
		if err := rec.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mrsim: recorded trace in %s\n", recordDir)
	}
	if verbose {
		if sres, ok := res.Extra.(*fatih.ScenarioResult); ok {
			fmt.Printf("routing converged at %v\n", sres.ConvergedAt)
			fmt.Printf("attack at %v: KansasCity drops 20%% of transit traffic\n", sres.AttackAt)
			fmt.Printf("first detection at %v, first reroute at %v\n", sres.FirstDetectionAt, sres.RerouteAt)
		}
	}
	return res.Log, res.Faulty
}

// summarize condenses a trial's log into the aggregate-mode outcome.
func summarize(logbook *detector.Log, faulty packet.NodeID) outcome {
	o := outcome{suspicions: logbook.Len(), firstAt: logbook.FirstAt()}
	for _, seg := range logbook.Segments() {
		if seg.Contains(faulty) {
			o.implicated = true
		}
	}
	return o
}

// writeVerdicts dumps the complete suspicion log, one rendered suspicion
// per line — the byte-comparable artifact the replay smoke test diffs
// against a trace replay of the same run.
func writeVerdicts(path string, logbook *detector.Log) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	for _, s := range logbook.All() {
		if _, err := fmt.Fprintln(f, s); err != nil {
			if cerr := f.Close(); cerr != nil {
				err = errors.Join(err, cerr)
			}
			return err
		}
	}
	return f.Close()
}

func report(logbook *detector.Log, faulty packet.NodeID) {
	fmt.Printf("\n%d suspicions:\n", logbook.Len())
	for i, s := range logbook.All() {
		if i >= 12 {
			fmt.Printf("  ... and %d more\n", logbook.Len()-i)
			break
		}
		fmt.Printf("  %v\n", s)
	}
	if logbook.Len() == 0 {
		fmt.Println("  (none)")
		return
	}
	fmt.Printf("\nfaulty router %v implicated: %v\n", faulty, summarize(logbook, faulty).implicated)
}
