// Command mrsim runs one malicious-router detection scenario: pick a
// topology, a detection protocol, and an attack; watch the suspicions.
//
//	go run ./cmd/mrsim -protocol pik2 -attack drop -rate 1
//	go run ./cmd/mrsim -protocol pi2 -attack modify
//	go run ./cmd/mrsim -protocol chi -attack masked90
//	go run ./cmd/mrsim -protocol watchers -attack drop
//	go run ./cmd/mrsim -protocol fatih -trace fatih.json
//
// -protocol fatih runs the full Abilene/Fatih scenario (§5.3, Fig 5.7):
// OSPF convergence, the Kansas City compromise, Πk+2 detection and the
// alert-driven reroute.
//
// Observability: -metrics and -trace snapshot the run's counters and
// virtual-time event timeline (see internal/telemetry); -cpuprofile and
// -memprofile write pprof profiles. All instrumentation output goes to
// files or stderr — stdout is unchanged by these flags.
//
// With -trials N > 1 the scenario is replayed over N independent seeds on a
// bounded worker pool (-parallel; default GOMAXPROCS, 1 = serial) and the
// aggregate detection statistics are reported. Trial i runs on its own
// simulator kernel with RNG stream sim.DeriveSeed(seed, i), so the numbers
// are identical for every -parallel value; per-trial metrics fold the same
// way (runner.MapFold).
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"routerwatch/internal/attack"
	"routerwatch/internal/baseline"
	"routerwatch/internal/detector"
	"routerwatch/internal/detector/chi"
	"routerwatch/internal/detector/pi2"
	"routerwatch/internal/detector/pik2"
	"routerwatch/internal/detector/tvinfo"
	"routerwatch/internal/fatih"
	"routerwatch/internal/network"
	"routerwatch/internal/packet"
	"routerwatch/internal/runner"
	"routerwatch/internal/stats"
	"routerwatch/internal/tcpsim"
	"routerwatch/internal/telemetry"
	"routerwatch/internal/topology"
)

// outcome is one trial's result.
type outcome struct {
	suspicions int
	implicated bool
	// firstAt is the first suspicion time (0 if none).
	firstAt time.Duration
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("mrsim: ")

	protocol := flag.String("protocol", "pik2", "pik2 | pi2 | chi | watchers | fatih")
	attackName := flag.String("attack", "drop", "drop | modify | reorder | fabricate | syn | masked90 | none")
	rate := flag.Float64("rate", 1, "drop probability for the drop attack")
	seed := flag.Int64("seed", 1, "simulation seed")
	dur := flag.Duration("duration", 30*time.Second, "simulated duration")
	trials := flag.Int("trials", 1, "independent trials (per-trial derived seeds)")
	parallel := flag.Int("parallel", 0, "worker pool size for -trials (0 = GOMAXPROCS, 1 = serial)")
	tf := telemetry.RegisterFlags(flag.CommandLine)
	flag.Parse()

	if tf.CPUProfile != "" {
		stop, err := telemetry.StartCPUProfile(tf.CPUProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
	}

	if *trials <= 1 {
		tel := tf.NewSet()
		logbook, faulty := runScenario(*protocol, *attackName, *rate, *seed, *dur, true, tel)
		report(logbook, faulty)
		if err := tf.Finish(tel); err != nil {
			log.Fatal(err)
		}
		return
	}

	// Aggregate mode folds per-trial registries deterministically; a trace
	// ring shared across concurrent kernels would interleave unrelated
	// virtual timelines, so -trace is a single-run feature.
	if tf.Trace != "" {
		fmt.Fprintln(os.Stderr, "mrsim: -trace applies to single runs; ignoring it for -trials > 1")
	}
	var foldReg *telemetry.Registry
	if tf.Metrics != "" {
		foldReg = telemetry.NewRegistry()
	}
	agg := stats.NewSharded(shardCount(*parallel))
	outs, rep := runner.MapFold(runner.Config{Workers: *parallel, BaseSeed: *seed}, *trials, foldReg,
		func(tr runner.Trial, reg *telemetry.Registry) outcome {
			var tel *telemetry.Set
			if reg != nil {
				tel = &telemetry.Set{Metrics: reg}
			}
			logbook, faulty := runScenario(*protocol, *attackName, *rate, tr.Seed, *dur, false, tel)
			o := summarize(logbook, faulty)
			if o.firstAt > 0 {
				agg.Shard(tr.Worker).Observe(tr.Index, o.firstAt.Seconds())
			}
			return o
		})

	detected, implicated := 0, 0
	for _, o := range outs {
		if o.suspicions > 0 {
			detected++
		}
		if o.implicated {
			implicated++
		}
	}
	first := agg.Fold()
	fmt.Printf("%d trials of %s/%s (base seed %d):\n", *trials, *protocol, *attackName, *seed)
	fmt.Printf("  detected:        %d/%d\n", detected, *trials)
	fmt.Printf("  faulty implicated: %d/%d\n", implicated, *trials)
	if first.N() > 0 {
		fmt.Printf("  first suspicion: mean %.2fs, median %.2fs, max %.2fs\n",
			first.Mean(), first.Median(), first.Max())
	}
	fmt.Fprintf(os.Stderr,
		"mrsim: %d workers: wall %.1fs, cumulative %.1fs, speedup %.2fx, utilization %.0f%%\n",
		rep.Workers, rep.Wall.Seconds(), rep.CumTrial.Seconds(), rep.Speedup(), 100*rep.Utilization())
	if err := tf.Finish(&telemetry.Set{Metrics: foldReg}); err != nil {
		log.Fatal(err)
	}
}

// shardCount mirrors runner.Config's worker resolution for shard sizing.
func shardCount(parallel int) int {
	if parallel > 0 {
		return parallel
	}
	return 64 // generous cover for GOMAXPROCS; unused shards cost nothing
}

// runScenario executes one trial and returns its suspicion log and the
// compromised router. verbose enables the single-run narration.
func runScenario(protocol, attackName string, rate float64, seed int64, dur time.Duration, verbose bool, tel *telemetry.Set) (*detector.Log, packet.NodeID) {
	switch protocol {
	case "chi":
		return runChi(attackName, seed, dur, verbose, tel)
	case "fatih":
		return runFatih(seed, dur, verbose, tel)
	}

	// Path-segment protocols run on a 5-router line with the middle
	// router compromised.
	g := topology.Line(5)
	net := network.New(g, network.Options{
		Seed: seed, ProcessingJitter: 100 * time.Microsecond, Telemetry: tel,
	})
	logbook := detector.NewLog()
	sink := detector.LogSink(logbook)

	switch protocol {
	case "pik2":
		pik2.Attach(net, pik2.Options{
			K: 1, Round: time.Second, Timeout: 250 * time.Millisecond,
			LossThreshold: 2, FabricationThreshold: 2, Sink: sink,
		})
	case "pi2":
		pi2.Attach(net, pi2.Options{
			K: 1, Round: time.Second, Settle: 250 * time.Millisecond,
			Thresholds: tvinfo.Thresholds{Loss: 2, Fabrication: 2}, Sink: sink,
		})
	case "watchers":
		baseline.AttachWatchers(net, baseline.WatchersOptions{
			Round: time.Second, Threshold: 5000, Fixed: true, Sink: sink,
		})
	default:
		log.Fatalf("unknown protocol %q", protocol)
	}

	faulty := packet.NodeID(2)
	switch attackName {
	case "drop":
		net.Router(faulty).SetBehavior(&attack.Dropper{
			Select: attack.All, P: rate, Rng: rand.New(rand.NewSource(seed)),
			Start: 5 * time.Second,
		})
	case "modify":
		net.Router(faulty).SetBehavior(&attack.Modifier{Select: attack.All, Start: 5 * time.Second})
	case "reorder":
		net.Router(faulty).SetBehavior(&attack.Delayer{
			Select: attack.DataOnly, Jitter: 10 * time.Millisecond,
			Rng: rand.New(rand.NewSource(seed)),
		})
	case "fabricate":
		attack.NewFabricator(net, faulty, 0, 4, 700, 20*time.Millisecond)
	case "none":
	default:
		log.Fatalf("attack %q not available for path-segment protocols", attackName)
	}

	// Bidirectional traffic across the line.
	for i := 0; i < int(dur.Seconds()*500); i++ {
		i := i
		net.Scheduler().At(time.Duration(i)*2*time.Millisecond+time.Microsecond, func() {
			net.Inject(0, &packet.Packet{Dst: 4, Size: 500, Flow: 1, Seq: uint32(i), Payload: uint64(i)})
			net.Inject(4, &packet.Packet{Dst: 0, Size: 500, Flow: 2, Seq: uint32(i), Payload: uint64(i)})
		})
	}
	net.Run(dur)
	return logbook, faulty
}

// runFatih runs the Abilene/Fatih scenario (§5.3, Fig 5.7): OSPF
// convergence, the Kansas City compromise, Πk+2 detection and the
// alert-driven reroute. Durations below a minute fall back to the
// scenario's canonical 240 s (the attack only starts at 117 s).
func runFatih(seed int64, dur time.Duration, verbose bool, tel *telemetry.Set) (*detector.Log, packet.NodeID) {
	opts := fatih.ScenarioOptions{Seed: seed, Telemetry: tel}
	if dur >= time.Minute {
		opts.Duration = dur
	}
	res := fatih.RunAbilene(opts)
	g := res.System.Net.Graph()
	kc, _ := g.Lookup("KansasCity")
	if verbose {
		fmt.Printf("routing converged at %v\n", res.ConvergedAt)
		fmt.Printf("attack at %v: KansasCity drops 20%% of transit traffic\n", res.AttackAt)
		fmt.Printf("first detection at %v, first reroute at %v\n", res.FirstDetectionAt, res.RerouteAt)
	}
	return res.System.Log, kc
}

func runChi(attackName string, seed int64, dur time.Duration, verbose bool, tel *telemetry.Set) (*detector.Log, packet.NodeID) {
	st := topology.SimpleChi(3, 2)
	buildNet := func(seed int64, opts chi.Options, tel *telemetry.Set) (*network.Network, *chi.Protocol, *tcpsim.Manager) {
		net := network.New(st.Graph, network.Options{
			Seed: seed, ProcessingJitter: 2 * time.Millisecond, Telemetry: tel,
		})
		opts.Queues = []chi.QueueID{{R: st.R, RD: st.RD}}
		p := chi.Attach(net, opts)
		return net, p, tcpsim.NewManager(net)
	}

	if verbose {
		fmt.Println("learning period (60 s simulated)...")
	}
	// The learning run is calibration machinery, not the scenario under
	// observation: it runs uninstrumented.
	lnet, lproto, lman := buildNet(seed, chi.Options{Learning: true, Round: time.Second}, nil)
	var flows []*tcpsim.Flow
	for i := 0; i < 3; i++ {
		flows = append(flows, lman.StartFlow(tcpsim.FlowConfig{
			Src: st.Sources[i], Dst: st.Sinks[i%2],
			Start: time.Duration(i) * 200 * time.Millisecond,
		}))
	}
	lnet.Run(60 * time.Second)
	cal := lproto.Validator(chi.QueueID{R: st.R, RD: st.RD}).Calibrate()
	if verbose {
		fmt.Printf("calibrated: mu=%.0f sigma=%.0f\n", cal.Mu, cal.Sigma)
	}

	logbook := detector.NewLog()
	net, _, man := buildNet(seed+1, chi.Options{
		Round: time.Second, Calibration: cal,
		SingleThreshold: 0.999, CombinedThreshold: 0.99,
		FabricationTolerance: 2, Sink: detector.LogSink(logbook),
	}, tel)
	flows = flows[:0]
	for i := 0; i < 3; i++ {
		flows = append(flows, man.StartFlow(tcpsim.FlowConfig{
			Src: st.Sources[i], Dst: st.Sinks[i%2],
			Start: time.Duration(i) * 200 * time.Millisecond,
		}))
	}
	attackAt := 10 * time.Second
	net.Run(attackAt)
	switch attackName {
	case "drop":
		net.Router(st.R).SetBehavior(&attack.Dropper{
			Select: attack.And(attack.ByFlow(flows[0].ID()), attack.DataOnly),
			P:      0.2, Rng: rand.New(rand.NewSource(seed)), Start: attackAt,
		})
	case "masked90":
		net.Router(st.R).SetBehavior(&attack.Dropper{
			Select: attack.And(attack.ByFlow(flows[1].ID()), attack.DataOnly),
			P:      1, MinQueueFrac: 0.9, Start: attackAt,
		})
	case "syn":
		net.Router(st.R).SetBehavior(&attack.Dropper{Select: attack.SYNOnly, P: 1, Start: attackAt})
		man.StartFlow(tcpsim.FlowConfig{
			Src: st.Sources[2], Dst: st.Sinks[0],
			Start: attackAt + 500*time.Millisecond, MaxPackets: 10,
		})
	case "none":
	default:
		log.Fatalf("attack %q not available for chi", attackName)
	}
	if dur < 30*time.Second {
		dur = 30 * time.Second
	}
	net.Run(dur)
	return logbook, st.R
}

// summarize condenses a trial's log into the aggregate-mode outcome.
func summarize(logbook *detector.Log, faulty packet.NodeID) outcome {
	o := outcome{suspicions: logbook.Len(), firstAt: logbook.FirstAt()}
	for _, seg := range logbook.Segments() {
		if seg.Contains(faulty) {
			o.implicated = true
		}
	}
	return o
}

func report(logbook *detector.Log, faulty packet.NodeID) {
	fmt.Printf("\n%d suspicions:\n", logbook.Len())
	for i, s := range logbook.All() {
		if i >= 12 {
			fmt.Printf("  ... and %d more\n", logbook.Len()-i)
			break
		}
		fmt.Printf("  %v\n", s)
	}
	if logbook.Len() == 0 {
		fmt.Println("  (none)")
		return
	}
	fmt.Printf("\nfaulty router %v implicated: %v\n", faulty, summarize(logbook, faulty).implicated)
}
